#include "sched/recovery.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace resched {

const char* ToString(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kRetry: return "retry";
    case RecoveryPolicy::kSoftwareFallback: return "swfallback";
    case RecoveryPolicy::kSuffixReschedule: return "suffix";
  }
  return "?";
}

RecoveryPolicy ParseRecoveryPolicy(const std::string& name) {
  if (name == "retry") return RecoveryPolicy::kRetry;
  if (name == "swfallback") return RecoveryPolicy::kSoftwareFallback;
  if (name == "suffix") return RecoveryPolicy::kSuffixReschedule;
  throw InstanceError("unknown recovery policy: " + name +
                      " (expected retry|swfallback|suffix)");
}

TimeT RetryBackoff(const RecoveryOptions& options, TimeT reconf_time,
                   std::size_t attempt) {
  RESCHED_CHECK_MSG(attempt >= 1, "backoff attempts are 1-based");
  const TimeT base =
      options.backoff_base > 0 ? options.backoff_base
                               : std::max<TimeT>(1, reconf_time);
  const TimeT cap =
      options.backoff_cap > 0 ? options.backoff_cap : 8 * base;
  TimeT delay = base;
  for (std::size_t k = 1; k < attempt && delay < cap; ++k) {
    delay *= 2;
  }
  return std::min(delay, cap);
}

namespace {

/// Index of the least-loaded core (ties -> lowest index).
std::size_t LeastLoadedCore(const std::vector<TimeT>& core_load) {
  RESCHED_CHECK_MSG(!core_load.empty(),
                    "recovery planning requires at least one processor");
  std::size_t best = 0;
  for (std::size_t c = 1; c < core_load.size(); ++c) {
    if (core_load[c] < core_load[best]) best = c;
  }
  return best;
}

std::size_t RequireSoftwareImpl(const TaskGraph& graph, TaskId task) {
  const Task& t = graph.GetTask(task);
  for (std::size_t i = 0; i < t.impls.size(); ++i) {
    if (t.impls[i].IsSoftware()) return graph.FastestSoftwareImpl(task);
  }
  throw InstanceError(StrFormat(
      "recovery deadlock: task %d (%s) lost its hardware home and has no "
      "software implementation to fall back to",
      task, t.name.c_str()));
}

RecoveryDecision PlaceOnCore(const TaskGraph& graph, TaskId task,
                             RecoveryContext& context) {
  RecoveryDecision d;
  d.task = task;
  d.to_region = false;
  d.impl_index = RequireSoftwareImpl(graph, task);
  d.target = LeastLoadedCore(context.core_load);
  const TimeT exec = graph.GetImpl(task, d.impl_index).exec_time;
  context.core_load[d.target] =
      std::max(context.core_load[d.target], context.now) + exec;
  return d;
}

}  // namespace

std::vector<RecoveryDecision> PlanSoftwareFallback(
    const TaskGraph& graph, const std::vector<TaskId>& orphans,
    RecoveryContext& context) {
  std::vector<RecoveryDecision> plan;
  plan.reserve(orphans.size());
  for (const TaskId task : orphans) {
    plan.push_back(PlaceOnCore(graph, task, context));
  }
  return plan;
}

std::vector<RecoveryDecision> PlanSuffixRepair(
    const TaskGraph& graph, const std::vector<TaskId>& orphans,
    RecoveryContext& context) {
  std::vector<RecoveryDecision> plan;
  plan.reserve(orphans.size());
  for (const TaskId task : orphans) {
    // Software candidate (may not exist; guarded below).
    bool has_sw = false;
    std::size_t sw_impl = 0;
    for (std::size_t i = 0; i < graph.GetTask(task).impls.size(); ++i) {
      if (graph.GetTask(task).impls[i].IsSoftware()) {
        has_sw = true;
        sw_impl = graph.FastestSoftwareImpl(task);
        break;
      }
    }
    TimeT best_finish = kTimeInfinity;
    RecoveryDecision best;
    best.task = task;
    if (has_sw) {
      const std::size_t core = LeastLoadedCore(context.core_load);
      best.to_region = false;
      best.target = core;
      best.impl_index = sw_impl;
      best_finish = std::max(context.core_load[core], context.now) +
                    graph.GetImpl(task, sw_impl).exec_time;
    }
    // Hardware candidates: surviving regions whose frozen capacity covers
    // one of the orphan's hardware implementations. A strictly earlier
    // finish wins; ties keep the software/lower-index candidate.
    for (std::size_t s = 0; s < context.regions.size(); ++s) {
      const RecoveryContext::RegionState& region = context.regions[s];
      if (!region.usable) continue;
      for (const std::size_t i : graph.HardwareImpls(task)) {
        const Implementation& impl = graph.GetImpl(task, i);
        if (!impl.res.FitsWithin(region.res)) continue;
        const TimeT finish = std::max(region.load, context.now) +
                             region.reconf_time + impl.exec_time;
        if (finish < best_finish) {
          best_finish = finish;
          best.to_region = true;
          best.target = s;
          best.impl_index = i;
        }
      }
    }
    if (best_finish == kTimeInfinity) {
      // Neither a region nor a core can host the orphan.
      (void)RequireSoftwareImpl(graph, task);  // throws the deadlock guard
    }
    if (best.to_region) {
      best.controller = LeastLoadedCore(context.controller_load);
      RecoveryContext::RegionState& region = context.regions[best.target];
      const TimeT start = std::max(region.load, context.now);
      region.load = start + region.reconf_time +
                    graph.GetImpl(task, best.impl_index).exec_time;
      context.controller_load[best.controller] =
          std::max(context.controller_load[best.controller], start) +
          region.reconf_time;
    } else {
      const TimeT exec = graph.GetImpl(task, best.impl_index).exec_time;
      context.core_load[best.target] =
          std::max(context.core_load[best.target], context.now) + exec;
    }
    plan.push_back(best);
  }
  return plan;
}

}  // namespace resched
