// Online schedule recovery: what the runtime does when the fabric
// misbehaves (failed reconfigurations, transient region faults, permanent
// region loss, task crashes).
//
// Three pluggable policies:
//
//  * kRetry — re-run the failed operation in place. Failed
//    reconfigurations retry on the controller with capped exponential
//    backoff; transiently-faulted regions wait out their repair window.
//    Software fallback happens only when forced (a permanently lost
//    region, or a reconfiguration that exhausted its attempt budget).
//  * kSoftwareFallback — migrate eagerly: any task whose hardware home
//    becomes unavailable (killed by a fault, orphaned by a dead region,
//    or starved by an abandoned reconfiguration) moves to its software
//    implementation on the least-loaded core, preserving precedence.
//  * kSuffixReschedule — re-plan the unstarted suffix of a dead region
//    with all started decisions pinned: each orphan is re-mapped to the
//    finish-time-minimizing option among the surviving regions (paying a
//    fresh reconfiguration) and the cores. The floorplan is frozen at
//    runtime — regions cannot be reshaped on a live FPGA — so this is
//    PA's mapping/ordering reasoning applied to the suffix, not a full
//    re-floorplan.
//
// Guarantee: as long as every task keeps at least one software
// implementation, every policy can always make progress (the cores are
// never lost), so simulation under any fault scenario terminates. The
// planners throw InstanceError when that precondition is violated — the
// "no-SW-implementation deadlock guard".
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace resched {

enum class RecoveryPolicy : std::uint8_t {
  kRetry,
  kSoftwareFallback,
  kSuffixReschedule,
};

const char* ToString(RecoveryPolicy policy);
/// Parses "retry" | "swfallback" | "suffix"; throws InstanceError otherwise.
RecoveryPolicy ParseRecoveryPolicy(const std::string& name);

struct RecoveryOptions {
  RecoveryPolicy policy = RecoveryPolicy::kRetry;
  /// A reconfiguration is abandoned (its task migrates) after this many
  /// failed attempts.
  std::size_t max_reconf_attempts = 4;
  /// Backoff before retry k (1-based) is
  ///   min(backoff_base * 2^(k-1), backoff_cap)
  /// ticks. 0 selects the defaults: base = the region's reconfiguration
  /// time, cap = 8x base — the controller is the scarce resource, so the
  /// delay is denominated in units of the work it would redo.
  TimeT backoff_base = 0;
  TimeT backoff_cap = 0;
};

/// Backoff delay before retry `attempt` (1-based) of a reconfiguration
/// whose nominal duration is `reconf_time`.
TimeT RetryBackoff(const RecoveryOptions& options, TimeT reconf_time,
                   std::size_t attempt);

/// Live-resource snapshot the planners bid against. `load` values are
/// projected availability times (now + committed work); the planners add
/// their own placements so consecutive decisions stay spread out.
struct RecoveryContext {
  TimeT now = 0;
  /// Projected availability per processor.
  std::vector<TimeT> core_load;
  struct RegionState {
    TimeT load = 0;          ///< projected availability
    bool usable = false;     ///< alive (not dead, not the faulted region)
    ResourceVec res;         ///< frozen capacity of the region
    TimeT reconf_time = 0;   ///< Eq. (2) reconfiguration duration
  };
  std::vector<RegionState> regions;
  /// Projected availability per reconfiguration controller.
  std::vector<TimeT> controller_load;
};

/// One re-placement decision for an orphaned task.
struct RecoveryDecision {
  TaskId task = kInvalidTask;
  bool to_region = false;
  std::size_t target = 0;      ///< processor id, or region id
  std::size_t impl_index = 0;
  /// Controller that runs the fresh reconfiguration (regions only).
  std::size_t controller = 0;
};

/// kSoftwareFallback planner: each orphan (callers pass them in
/// topological order) goes to its fastest software implementation on the
/// least-loaded core. Throws InstanceError when an orphan has no software
/// implementation (the deadlock guard). Mutates `context` loads.
std::vector<RecoveryDecision> PlanSoftwareFallback(
    const TaskGraph& graph, const std::vector<TaskId>& orphans,
    RecoveryContext& context);

/// kSuffixReschedule planner: each orphan is placed on the candidate with
/// the earliest estimated finish — a usable region whose capacity covers
/// one of the orphan's hardware implementations (cost: availability +
/// reconfiguration + execution) or a core running the fastest software
/// implementation. Ties prefer the software option, then the lower index,
/// keeping the plan deterministic. Throws InstanceError when an orphan has
/// neither a feasible region nor a software implementation.
std::vector<RecoveryDecision> PlanSuffixRepair(
    const TaskGraph& graph, const std::vector<TaskId>& orphans,
    RecoveryContext& context);

}  // namespace resched
