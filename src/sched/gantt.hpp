// Human-readable schedule rendering: a per-resource timeline table plus an
// ASCII Gantt chart (used by the examples and by debugging sessions).
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace resched {

/// Tabular listing: one line per task slot and reconfiguration, sorted by
/// start time, with target and implementation details.
std::string ScheduleTable(const Instance& instance, const Schedule& schedule);

/// ASCII Gantt chart with one lane per processor, region and the
/// reconfiguration controller. `width` is the number of character cells the
/// makespan is scaled to.
std::string GanttChart(const Instance& instance, const Schedule& schedule,
                       std::size_t width = 96);

/// One-paragraph summary (makespan, HW/SW split, reconfiguration load).
std::string ScheduleSummary(const Instance& instance, const Schedule& schedule);

}  // namespace resched
