#include "sched/gantt.hpp"

#include <algorithm>
#include <tuple>

#include "util/string_util.hpp"

namespace resched {

namespace {

struct Lane {
  std::string label;
  // (start, end, glyph-label)
  std::vector<std::tuple<TimeT, TimeT, std::string>> bars;
};

std::vector<Lane> BuildLanes(const Instance& instance,
                             const Schedule& schedule) {
  std::vector<Lane> lanes;
  for (std::size_t p = 0; p < instance.platform.NumProcessors(); ++p) {
    lanes.push_back(Lane{StrFormat("cpu%zu", p), {}});
  }
  const std::size_t region_base = lanes.size();
  for (std::size_t s = 0; s < schedule.regions.size(); ++s) {
    lanes.push_back(Lane{StrFormat("rr%zu", s), {}});
  }
  lanes.push_back(Lane{"icap", {}});

  for (const TaskSlot& slot : schedule.task_slots) {
    const std::size_t lane = slot.OnFpga()
                                 ? region_base + slot.target_index
                                 : slot.target_index;
    lanes[lane].bars.emplace_back(
        slot.start, slot.end,
        instance.graph.GetTask(slot.task).name);
  }
  for (const ReconfSlot& r : schedule.reconfigurations) {
    lanes.back().bars.emplace_back(
        r.start, r.end, StrFormat("R(rr%zu<-%s)", r.region,
                                  instance.graph.GetTask(r.loads_task)
                                      .name.c_str()));
  }
  for (Lane& lane : lanes) {
    std::sort(lane.bars.begin(), lane.bars.end());
  }
  return lanes;
}

}  // namespace

std::string ScheduleTable(const Instance& instance, const Schedule& schedule) {
  struct Row {
    TimeT start;
    std::string text;
  };
  std::vector<Row> rows;
  for (const TaskSlot& slot : schedule.task_slots) {
    const Task& task = instance.graph.GetTask(slot.task);
    const Implementation& impl = task.impls[slot.impl_index];
    rows.push_back(Row{
        slot.start,
        StrFormat("%10lld %10lld  %-12s %-4s %-6s %s",
                  static_cast<long long>(slot.start),
                  static_cast<long long>(slot.end), task.name.c_str(),
                  impl.IsHardware() ? "HW" : "SW",
                  slot.OnFpga() ? StrFormat("rr%zu", slot.target_index).c_str()
                                : StrFormat("cpu%zu", slot.target_index)
                                      .c_str(),
                  impl.name.c_str())});
  }
  for (const ReconfSlot& r : schedule.reconfigurations) {
    rows.push_back(Row{
        r.start,
        StrFormat("%10lld %10lld  %-12s %-4s %-6s loads %s",
                  static_cast<long long>(r.start),
                  static_cast<long long>(r.end), "reconf", "--",
                  StrFormat("rr%zu", r.region).c_str(),
                  instance.graph.GetTask(r.loads_task).name.c_str())});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.start < b.start; });

  std::string out = StrFormat("%10s %10s  %-12s %-4s %-6s %s\n", "start",
                              "end", "task", "kind", "where", "impl");
  for (const Row& row : rows) out += row.text + "\n";
  return out;
}

std::string GanttChart(const Instance& instance, const Schedule& schedule,
                       std::size_t width) {
  const TimeT makespan = std::max<TimeT>(schedule.makespan, 1);
  const std::vector<Lane> lanes = BuildLanes(instance, schedule);

  std::size_t label_width = 0;
  for (const Lane& lane : lanes) {
    label_width = std::max(label_width, lane.label.size());
  }

  auto to_cell = [&](TimeT t) {
    return static_cast<std::size_t>(
        static_cast<double>(t) / static_cast<double>(makespan) *
        static_cast<double>(width - 1));
  };

  std::string out;
  for (const Lane& lane : lanes) {
    std::string row(width, '.');
    for (const auto& [start, end, label] : lane.bars) {
      const std::size_t c0 = to_cell(start);
      const std::size_t c1 = std::max(c0 + 1, to_cell(end));
      for (std::size_t c = c0; c < c1 && c < width; ++c) row[c] = '#';
      // Overlay as much of the label as fits inside the bar.
      for (std::size_t i = 0; i < label.size() && c0 + i < c1 - 0 &&
                              c0 + i < width;
           ++i) {
        row[c0 + i] = label[i];
      }
    }
    out += PadRight(lane.label, label_width) + " |" + row + "|\n";
  }
  out += PadRight("", label_width) + "  0" +
         PadLeft(FormatTicks(makespan), width - 1) + "\n";
  return out;
}

std::string ScheduleSummary(const Instance& instance,
                            const Schedule& schedule) {
  (void)instance;  // kept for interface symmetry with the other renderers
  const std::size_t hw = schedule.NumHardwareTasks();
  const std::size_t total = schedule.task_slots.size();
  return StrFormat(
      "%s: makespan %s | %zu/%zu tasks in HW across %zu regions | %zu "
      "reconfigurations totalling %s | floorplan %s",
      schedule.algorithm.c_str(), FormatTicks(schedule.makespan).c_str(), hw,
      total, schedule.regions.size(), schedule.reconfigurations.size(),
      FormatTicks(schedule.TotalReconfigurationTime()).c_str(),
      schedule.floorplan_checked
          ? (schedule.floorplan.empty() && !schedule.regions.empty()
                 ? "NOT FOUND"
                 : "valid")
          : "unchecked");
}

}  // namespace resched
