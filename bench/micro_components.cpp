// Micro-benchmarks (google-benchmark) for the individual components: CPM
// window recomputation, placement enumeration, floorplan feasibility
// queries, instance generation, the PA core and one IS-k window. These
// back the Table-I runtime decomposition with per-component numbers.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "taskgraph/timing.hpp"

using namespace resched;
using namespace resched::bench;

namespace {

Instance MakeBenchInstance(std::size_t n, std::uint64_t seed = 77) {
  GeneratorOptions gen;
  gen.num_tasks = n;
  return GenerateInstance(MakeZedBoard(), gen, seed, "micro");
}

void BM_GenerateInstance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeBenchInstance(n, seed++));
  }
}
BENCHMARK(BM_GenerateInstance)->Arg(10)->Arg(50)->Arg(100);

void BM_CpmWindows(benchmark::State& state) {
  const Instance inst = MakeBenchInstance(
      static_cast<std::size_t>(state.range(0)));
  TimingContext timing(inst.graph);
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    timing.SetExecTime(static_cast<TaskId>(t),
                       inst.graph.GetTask(static_cast<TaskId>(t))
                           .impls.front()
                           .exec_time);
  }
  TimeT flip = 1000;
  for (auto _ : state) {
    // Alternate an exec time so every Windows() call recomputes.
    timing.SetExecTime(0, flip);
    flip = flip == 1000 ? 1001 : 1000;
    benchmark::DoNotOptimize(timing.Windows().makespan);
  }
}
BENCHMARK(BM_CpmWindows)->Arg(10)->Arg(50)->Arg(100);

void BM_EnumeratePlacements(benchmark::State& state) {
  const FpgaDevice device = MakeXc7z020();
  const Fabric fabric(device);
  const ResourceVec req(
      {state.range(1), state.range(1) / 100, state.range(1) / 50});
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateFeasiblePlacements(fabric, req));
  }
  (void)state.range(0);
}
BENCHMARK(BM_EnumeratePlacements)->Args({0, 500})->Args({0, 2000})
    ->Args({0, 6000});

void BM_FloorplanFeasible(benchmark::State& state) {
  const FpgaDevice device = MakeXc7z020();
  const auto regions = static_cast<std::size_t>(state.range(0));
  std::vector<ResourceVec> reqs(regions, ResourceVec({1200, 8, 10}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindFloorplan(device, reqs));
  }
}
BENCHMARK(BM_FloorplanFeasible)->Arg(2)->Arg(5)->Arg(8);

void BM_PaCore(benchmark::State& state) {
  const Instance inst = MakeBenchInstance(
      static_cast<std::size_t>(state.range(0)));
  PaOptions opt;
  opt.run_floorplan = false;
  Rng rng(1);
  const ResourceVec cap = inst.platform.Device().Capacity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPaCore(inst, opt, cap, rng));
  }
}
BENCHMARK(BM_PaCore)->Arg(10)->Arg(50)->Arg(100);

void BM_PaWithFloorplan(benchmark::State& state) {
  const Instance inst = MakeBenchInstance(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SchedulePa(inst));
  }
}
BENCHMARK(BM_PaWithFloorplan)->Arg(10)->Arg(50)->Arg(100);

void BM_Is1(benchmark::State& state) {
  const Instance inst = MakeBenchInstance(
      static_cast<std::size_t>(state.range(0)));
  IskOptions opt;
  opt.k = 1;
  opt.run_floorplan = false;
  const ResourceVec cap = inst.platform.Device().Capacity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunIskCore(inst, opt, cap));
  }
}
BENCHMARK(BM_Is1)->Arg(10)->Arg(50)->Arg(100);

void BM_Is5Window(benchmark::State& state) {
  const Instance inst = MakeBenchInstance(40);
  IskOptions opt;
  opt.k = 5;
  opt.node_budget = static_cast<std::size_t>(state.range(0));
  opt.run_floorplan = false;
  const ResourceVec cap = inst.platform.Device().Capacity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunIskCore(inst, opt, cap));
  }
}
BENCHMARK(BM_Is5Window)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Validator(benchmark::State& state) {
  const Instance inst = MakeBenchInstance(
      static_cast<std::size_t>(state.range(0)));
  const Schedule s = SchedulePa(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValidateSchedule(inst, s));
  }
}
BENCHMARK(BM_Validator)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
