// Ablation bench (beyond the paper's figures): quantifies the design
// choices DESIGN.md calls out.
//
//   (a) non-critical task ordering in regions definition: efficiency-index
//       (the paper's choice) vs fastest-first (the IS-1-like bias) vs
//       graph order vs the best of N random orders;
//   (b) software task balancing (§V-D) on vs off;
//   (c) the module-reuse extension (paper future work) on vs off.
#include <iostream>

#include "bench_common.hpp"

using namespace resched;
using namespace resched::bench;

namespace {

double AvgMakespanMs(const BenchConfig& config, std::size_t n,
                     const PaOptions& options) {
  RunningStat stat;
  for (const Instance& instance : Group(config, n)) {
    const Schedule s = SchedulePa(instance, options);
    const ValidationResult r = ValidateSchedule(instance, s);
    if (!r.ok()) {
      std::cerr << "FATAL: invalid schedule in ablation: " << r.Summary()
                << "\n";
      std::abort();
    }
    stat.Add(static_cast<double>(s.makespan) / 1e3);
  }
  return stat.Mean();
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  std::cout << "=== Ablation: PA design choices, avg makespan [ms] (suite "
               "scale "
            << config.scale << ") ===\n";
  PrintRow({"#tasks", "efficiency", "fastest1st", "graph-ord", "no-balance",
            "mod-reuse"});

  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t n : config.group_sizes) {
    PaOptions eff;  // defaults: efficiency ordering, balancing on

    PaOptions fastest = eff;
    fastest.ordering = NonCriticalOrder::kFastestFirst;

    PaOptions graph_ord = eff;
    graph_ord.ordering = NonCriticalOrder::kGraphOrder;

    PaOptions no_balance = eff;
    no_balance.sw_balancing = false;

    PaOptions reuse = eff;
    reuse.module_reuse = true;

    const double v_eff = AvgMakespanMs(config, n, eff);
    const double v_fast = AvgMakespanMs(config, n, fastest);
    const double v_graph = AvgMakespanMs(config, n, graph_ord);
    const double v_nobal = AvgMakespanMs(config, n, no_balance);
    const double v_reuse = AvgMakespanMs(config, n, reuse);

    PrintRow({std::to_string(n), StrFormat("%.2f", v_eff),
              StrFormat("%.2f", v_fast), StrFormat("%.2f", v_graph),
              StrFormat("%.2f", v_nobal), StrFormat("%.2f", v_reuse)});
    csv_rows.push_back({std::to_string(n), StrFormat("%.3f", v_eff),
                        StrFormat("%.3f", v_fast),
                        StrFormat("%.3f", v_graph),
                        StrFormat("%.3f", v_nobal),
                        StrFormat("%.3f", v_reuse)});
  }
  WriteCsv(config, "ablation_ordering",
           {"num_tasks", "efficiency_ms", "fastest_first_ms",
            "graph_order_ms", "no_balancing_ms", "module_reuse_ms"},
           csv_rows);
  std::cout << "\nShape check: efficiency ordering should dominate "
               "fastest-first (the Figure-1 argument); module reuse should "
               "never hurt.\n";
  return 0;
}
