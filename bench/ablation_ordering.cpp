// Ablation bench (beyond the paper's figures): quantifies the design
// choices DESIGN.md calls out.
//
//   (a) non-critical task ordering in regions definition: efficiency-index
//       (the paper's choice) vs fastest-first (the IS-1-like bias) vs
//       graph order vs the best of N random orders;
//   (b) software task balancing (§V-D) on vs off;
//   (c) the module-reuse extension (paper future work) on vs off;
//   (d) learned value ordering in the floorplan DFS (--fp-order learned)
//       vs plain enumeration order, with cache-level DFS node counts.
#include <cstdint>
#include <iostream>

#include "bench_common.hpp"
#include "floorplan/floorplan_cache.hpp"

using namespace resched;
using namespace resched::bench;

namespace {

double AvgMakespanMs(const BenchConfig& config, std::size_t n,
                     const PaOptions& options) {
  RunningStat stat;
  for (const Instance& instance : Group(config, n)) {
    const Schedule s = SchedulePa(instance, options);
    const ValidationResult r = ValidateSchedule(instance, s);
    if (!r.ok()) {
      std::cerr << "FATAL: invalid schedule in ablation: " << r.Summary()
                << "\n";
      std::abort();
    }
    stat.Add(static_cast<double>(s.makespan) / 1e3);
  }
  return stat.Mean();
}

struct FpOrderLeg {
  double makespan_ms = 0.0;
  std::uint64_t solve_nodes = 0;
};

// Same suite driven through a FloorplanCache so the ordering model can
// accumulate wins across instances, as it does inside PA-R restarts.
FpOrderLeg AvgMakespanFpOrder(const BenchConfig& config, std::size_t n,
                              FpValueOrder order) {
  PaOptions options;
  options.floorplan.value_order = order;
  RunningStat stat;
  std::uint64_t nodes = 0;
  for (const Instance& instance : Group(config, n)) {
    FloorplanCache cache(instance.platform.Device());
    const Schedule s = SchedulePa(instance, options, &cache);
    const ValidationResult r = ValidateSchedule(instance, s);
    if (!r.ok()) {
      std::cerr << "FATAL: invalid schedule in fp-order ablation: "
                << r.Summary() << "\n";
      std::abort();
    }
    stat.Add(static_cast<double>(s.makespan) / 1e3);
    nodes += cache.Stats().solve_nodes;
  }
  return {stat.Mean(), nodes};
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  std::cout << "=== Ablation: PA design choices, avg makespan [ms] (suite "
               "scale "
            << config.scale << ") ===\n";
  PrintRow({"#tasks", "efficiency", "fastest1st", "graph-ord", "no-balance",
            "mod-reuse"});

  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t n : config.group_sizes) {
    PaOptions eff;  // defaults: efficiency ordering, balancing on

    PaOptions fastest = eff;
    fastest.ordering = NonCriticalOrder::kFastestFirst;

    PaOptions graph_ord = eff;
    graph_ord.ordering = NonCriticalOrder::kGraphOrder;

    PaOptions no_balance = eff;
    no_balance.sw_balancing = false;

    PaOptions reuse = eff;
    reuse.module_reuse = true;

    const double v_eff = AvgMakespanMs(config, n, eff);
    const double v_fast = AvgMakespanMs(config, n, fastest);
    const double v_graph = AvgMakespanMs(config, n, graph_ord);
    const double v_nobal = AvgMakespanMs(config, n, no_balance);
    const double v_reuse = AvgMakespanMs(config, n, reuse);
    const FpOrderLeg fp_enum =
        AvgMakespanFpOrder(config, n, FpValueOrder::kEnumeration);
    const FpOrderLeg fp_learned =
        AvgMakespanFpOrder(config, n, FpValueOrder::kLearned);

    PrintRow({std::to_string(n), StrFormat("%.2f", v_eff),
              StrFormat("%.2f", v_fast), StrFormat("%.2f", v_graph),
              StrFormat("%.2f", v_nobal), StrFormat("%.2f", v_reuse)});
    std::cout << "   fp-order: enum " << StrFormat("%.2f", fp_enum.makespan_ms)
              << " ms / " << fp_enum.solve_nodes << " DFS nodes, learned "
              << StrFormat("%.2f", fp_learned.makespan_ms) << " ms / "
              << fp_learned.solve_nodes << " DFS nodes\n";
    csv_rows.push_back({std::to_string(n), StrFormat("%.3f", v_eff),
                        StrFormat("%.3f", v_fast),
                        StrFormat("%.3f", v_graph),
                        StrFormat("%.3f", v_nobal),
                        StrFormat("%.3f", v_reuse),
                        StrFormat("%.3f", fp_enum.makespan_ms),
                        StrFormat("%.3f", fp_learned.makespan_ms),
                        std::to_string(fp_enum.solve_nodes),
                        std::to_string(fp_learned.solve_nodes)});
  }
  WriteCsv(config, "ablation_ordering",
           {"num_tasks", "efficiency_ms", "fastest_first_ms",
            "graph_order_ms", "no_balancing_ms", "module_reuse_ms",
            "fp_order_enum_ms", "fp_order_learned_ms", "fp_order_enum_nodes",
            "fp_order_learned_nodes"},
           csv_rows);
  std::cout << "\nShape check: efficiency ordering should dominate "
               "fastest-first (the Figure-1 argument); module reuse should "
               "never hurt. Learned floorplan value ordering may only "
               "reorder DFS visits — makespans must match enumeration "
               "order; the node counts show what the reordering buys.\n";
  return 0;
}
