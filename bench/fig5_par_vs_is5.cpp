// Figure 5 — average improvement of PA-R over IS-5 when both get the same
// wall-clock budget (PA-R's budget is the measured IS-5 time, as in the
// paper's protocol). The paper reports 22.3% average improvement for
// applications with more than 20 tasks, with IS-5 still ahead for the
// smallest (10-task) group.
#include <iostream>

#include "bench_common.hpp"

using namespace resched;
using namespace resched::bench;

int main() {
  const BenchConfig config = LoadConfig();
  std::cout << "=== Figure 5: PA-R improvement over IS-5 at equal budget "
               "[%] (suite scale "
            << config.scale << ") ===\n";
  PrintRow({"#tasks", "avg impr %", "stddev", "budget[s]"});

  std::vector<std::vector<std::string>> csv_rows;
  RunningStat overall_20plus;
  for (const std::size_t n : config.group_sizes) {
    ComparisonSelect select;
    select.pa = true;  // PA runs inside PA-R's warm start anyway
    select.par = true;
    select.is5 = true;
    const auto rows = RunComparison(config, n, select);

    RunningStat impr, budget;
    for (const ComparisonRow& row : rows) {
      const double x =
          ImprovementPercent(row.is5_makespan, row.par_makespan);
      impr.Add(x);
      budget.Add(row.is5_seconds);
      if (n >= 20) overall_20plus.Add(x);
    }
    PrintRow({std::to_string(n), StrFormat("%.1f", impr.Mean()),
              StrFormat("%.1f", impr.StdDev()),
              StrFormat("%.3f", budget.Mean())});
    csv_rows.push_back({std::to_string(n), StrFormat("%.3f", impr.Mean()),
                        StrFormat("%.3f", impr.StdDev()),
                        StrFormat("%.4f", budget.Mean())});
  }
  WriteCsv(config, "fig5_par_vs_is5",
           {"num_tasks", "improvement_pct", "stddev_pct", "budget_s"},
           csv_rows);
  std::cout << "\nAverage improvement for >= 20 tasks: "
            << StrFormat("%.1f%%", overall_20plus.Mean())
            << " (paper: 22.3%)\n";
  return 0;
}
