// Figure 4 — average improvement of PA over IS-5 per suite group. The
// paper observes a smaller gap than against IS-1 (IS-5's larger window
// buys it quality at a much larger runtime).
#include <iostream>

#include "bench_common.hpp"

using namespace resched;
using namespace resched::bench;

int main() {
  const BenchConfig config = LoadConfig();
  std::cout << "=== Figure 4: PA improvement over IS-5 [%] (suite scale "
            << config.scale << ") ===\n";
  PrintRow({"#tasks", "avg impr %", "stddev"});

  std::vector<std::vector<std::string>> csv_rows;
  RunningStat overall;
  for (const std::size_t n : config.group_sizes) {
    ComparisonSelect select;
    select.pa = true;
    select.is5 = true;
    const auto rows = RunComparison(config, n, select);

    RunningStat impr;
    for (const ComparisonRow& row : rows) {
      const double x = ImprovementPercent(row.is5_makespan, row.pa_makespan);
      impr.Add(x);
      overall.Add(x);
    }
    PrintRow({std::to_string(n), StrFormat("%.1f", impr.Mean()),
              StrFormat("%.1f", impr.StdDev())});
    csv_rows.push_back({std::to_string(n), StrFormat("%.3f", impr.Mean()),
                        StrFormat("%.3f", impr.StdDev())});
  }
  WriteCsv(config, "fig4_pa_vs_is5",
           {"num_tasks", "improvement_pct", "stddev_pct"}, csv_rows);
  std::cout << "\nOverall average improvement: "
            << StrFormat("%.1f%%", overall.Mean())
            << " (paper: positive but smaller than vs IS-1)\n";
  return 0;
}
