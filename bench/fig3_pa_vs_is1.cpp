// Figure 3 — average improvement of PA's schedule makespan over IS-1, with
// standard deviation, per suite group. The paper reports a 14.8% average
// with the best gains for medium-sized applications (20..60 tasks) and a
// high standard deviation.
#include <iostream>

#include "bench_common.hpp"

using namespace resched;
using namespace resched::bench;

int main() {
  const BenchConfig config = LoadConfig();
  std::cout << "=== Figure 3: PA improvement over IS-1 [%] (suite scale "
            << config.scale << ") ===\n";
  PrintRow({"#tasks", "avg impr %", "stddev"});

  std::vector<std::vector<std::string>> csv_rows;
  RunningStat overall;
  for (const std::size_t n : config.group_sizes) {
    ComparisonSelect select;
    select.pa = true;
    select.is1 = true;
    const auto rows = RunComparison(config, n, select);

    RunningStat impr;
    for (const ComparisonRow& row : rows) {
      const double x = ImprovementPercent(row.is1_makespan, row.pa_makespan);
      impr.Add(x);
      overall.Add(x);
    }
    PrintRow({std::to_string(n), StrFormat("%.1f", impr.Mean()),
              StrFormat("%.1f", impr.StdDev())});
    csv_rows.push_back({std::to_string(n), StrFormat("%.3f", impr.Mean()),
                        StrFormat("%.3f", impr.StdDev())});
  }
  WriteCsv(config, "fig3_pa_vs_is1",
           {"num_tasks", "improvement_pct", "stddev_pct"}, csv_rows);
  std::cout << "\nOverall average improvement: "
            << StrFormat("%.1f%%", overall.Mean())
            << " (paper: 14.8%)\n";
  return 0;
}
