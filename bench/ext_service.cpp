// Extension: reschedd service throughput. A closed-loop client drives the
// in-process pipe transport with a fixed window of outstanding schedule
// requests (a saturating load below the admission limit) and measures
// end-to-end request latency and throughput for workers x result-cache
// configurations.
//
// Two hard properties are asserted, not just measured:
//  * zero drops — every submitted request gets exactly one ok response
//    (the queue is sized above the window, so admission never rejects);
//  * bit-identity — the multiset of response bodies (ids stripped) is
//    identical across every configuration, workers=1 or 4, cache on or
//    off. A mismatch is a determinism regression, and the bench fails.
#include <algorithm>
#include <iostream>
#include <map>
#include <thread>

#include "bench_common.hpp"
#include "io/instance_io.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "util/build_info.hpp"
#include "util/timer.hpp"

using namespace resched;
using namespace resched::bench;

namespace {

struct LoadResult {
  double total_seconds = 0.0;
  std::vector<double> latencies_ms;
  std::uint64_t cache_hits = 0;
  std::vector<std::string> bodies;  ///< sorted, ids stripped
};

std::string StripId(const std::string& line) {
  const std::size_t comma = line.find(',');
  std::string body = "{";
  body += line.substr(comma + 1);
  return body;
}

/// Runs the full request list through a fresh server with `window`
/// requests outstanding at any time; returns latency and identity data.
LoadResult RunLoad(const std::vector<std::string>& lines, std::size_t workers,
                   bool cache, std::size_t window) {
  service::PipeTransport pipe;
  service::ServerOptions options;
  options.workers = workers;
  options.result_cache = cache;
  options.queue_capacity = lines.size() + window;  // never overloads
  service::RescheddServer server(pipe, options);
  std::thread serve([&server] { server.Serve(); });
  std::string line;
  if (!pipe.Receive(line)) {
    std::cerr << "FATAL: no handshake\n";
    std::exit(1);
  }

  LoadResult result;
  std::map<std::string, double> sent_at;
  WallTimer clock;
  std::size_t next = 0;
  std::size_t done = 0;
  while (done < lines.size()) {
    while (next < lines.size() && next - done < window) {
      std::string id = "b";
      id += std::to_string(next);
      sent_at[std::move(id)] = clock.ElapsedSeconds();
      pipe.Send(lines[next]);
      ++next;
    }
    if (!pipe.Receive(line)) {
      std::cerr << "FATAL: server closed mid-run\n";
      std::exit(1);
    }
    const JsonValue response = JsonValue::Parse(line);
    const std::string id = response.GetString("id", "");
    const auto started = sent_at.find(id);
    if (started == sent_at.end() || !response.GetBool("ok", false)) {
      std::cerr << "FATAL: dropped/duplicated/failed response: " << line
                << "\n";
      std::exit(1);
    }
    result.latencies_ms.push_back(
        (clock.ElapsedSeconds() - started->second) * 1e3);
    sent_at.erase(started);
    result.bodies.push_back(StripId(line));
    ++done;
  }
  result.total_seconds = clock.ElapsedSeconds();

  pipe.Send("{\"verb\":\"shutdown\"}");
  while (pipe.Receive(line)) {
    if (line.find("\"verb\":\"shutdown\"") != std::string::npos) break;
  }
  serve.join();
  if (!sent_at.empty()) {
    std::cerr << "FATAL: " << sent_at.size() << " request(s) unanswered\n";
    std::exit(1);
  }
  result.cache_hits = server.Counters().cache_hits;
  std::sort(result.bodies.begin(), result.bodies.end());
  return result;
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  const std::size_t num_requests = std::max<std::size_t>(
      24, static_cast<std::size_t>(120.0 * config.scale));
  const std::size_t window = 8;

  // A request mix with deliberate duplicates: 8 instances x 3 seeds, so a
  // result cache sees real hit opportunities once the working set repeats.
  std::vector<Instance> instances = Group(config, 20);
  const std::vector<Instance> larger = Group(config, 40);
  instances.resize(std::min<std::size_t>(instances.size(), 4));
  instances.insert(instances.end(), larger.begin(),
                   larger.begin() +
                       static_cast<std::ptrdiff_t>(
                           std::min<std::size_t>(larger.size(), 4)));
  std::vector<std::string> lines;
  lines.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    JsonObject request;
    request["verb"] = "schedule";
    std::string id = "b";
    id += std::to_string(i);
    request["id"] = std::move(id);
    request["instance"] = InstanceToJson(instances[i % instances.size()]);
    request["seed"] = static_cast<std::int64_t>(1 + i % 3);
    lines.push_back(JsonValue(std::move(request)).Dump(-1));
  }

  const BuildInfo& build_info = GetBuildInfo();
  std::string build = build_info.version;
  build += "+";
  build += build_info.git;
  std::cout << "=== Extension: reschedd throughput (" << num_requests
            << " requests, window " << window << ", suite scale "
            << config.scale << ") ===\n";
  PrintRow({"workers", "cache", "total[s]", "req/s", "p50[ms]", "p95[ms]",
            "hits"});

  std::vector<std::vector<std::string>> csv_rows;
  std::vector<std::string> reference_bodies;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const bool cache : {false, true}) {
      const LoadResult r = RunLoad(lines, workers, cache, window);
      if (reference_bodies.empty()) {
        reference_bodies = r.bodies;
      } else if (r.bodies != reference_bodies) {
        std::cerr << "FATAL: response bodies differ (workers=" << workers
                  << ", cache=" << (cache ? "on" : "off")
                  << ") — determinism regression\n";
        return 1;
      }
      const double rps =
          static_cast<double>(num_requests) / r.total_seconds;
      const double p50 = Percentile(r.latencies_ms, 50.0);
      const double p95 = Percentile(r.latencies_ms, 95.0);
      PrintRow({std::to_string(workers), cache ? "on" : "off",
                StrFormat("%.3f", r.total_seconds), StrFormat("%.1f", rps),
                StrFormat("%.2f", p50), StrFormat("%.2f", p95),
                std::to_string(r.cache_hits)});
      csv_rows.push_back({std::to_string(workers), cache ? "on" : "off",
                          std::to_string(num_requests),
                          std::to_string(window),
                          StrFormat("%.4f", r.total_seconds),
                          StrFormat("%.2f", rps), StrFormat("%.3f", p50),
                          StrFormat("%.3f", p95),
                          std::to_string(r.cache_hits), build});
    }
  }

  WriteCsv(config, "service",
           {"workers", "cache", "requests", "window", "total_s",
            "throughput_rps", "p50_ms", "p95_ms", "cache_hits", "build"},
           csv_rows);
  std::cout << "zero drops, bodies bit-identical across all "
            << csv_rows.size() << " configurations\n";
  return 0;
}
