// Figure 2 — "Comparison between solutions": average schedule makespan per
// suite group for PA, PA-R, IS-1 and IS-5. PA-R runs with the measured
// IS-5 time as its budget (the paper's protocol).
#include <iostream>

#include "bench_common.hpp"

using namespace resched;
using namespace resched::bench;

int main() {
  const BenchConfig config = LoadConfig();
  std::cout << "=== Figure 2: average schedule makespan [ms] (suite scale "
            << config.scale << ") ===\n";
  PrintRow({"#tasks", "PA", "PA-R", "IS-1", "IS-5"});

  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t n : config.group_sizes) {
    ComparisonSelect select;
    select.pa = select.par = select.is1 = select.is5 = true;
    const auto rows = RunComparison(config, n, select);

    RunningStat pa, par, is1, is5;
    for (const ComparisonRow& row : rows) {
      pa.Add(static_cast<double>(row.pa_makespan) / 1e3);
      par.Add(static_cast<double>(row.par_makespan) / 1e3);
      is1.Add(static_cast<double>(row.is1_makespan) / 1e3);
      is5.Add(static_cast<double>(row.is5_makespan) / 1e3);
    }
    PrintRow({std::to_string(n), StrFormat("%.2f", pa.Mean()),
              StrFormat("%.2f", par.Mean()), StrFormat("%.2f", is1.Mean()),
              StrFormat("%.2f", is5.Mean())});
    csv_rows.push_back(
        {std::to_string(n), StrFormat("%.3f", pa.Mean()),
         StrFormat("%.3f", par.Mean()), StrFormat("%.3f", is1.Mean()),
         StrFormat("%.3f", is5.Mean())});
  }
  WriteCsv(config, "fig2_makespan",
           {"num_tasks", "pa_ms", "par_ms", "is1_ms", "is5_ms"}, csv_rows);
  std::cout << "\nPaper shape check: PA/PA-R curves should sit below IS-1 "
               "and (for >= 20 tasks) below IS-5.\n";
  return 0;
}
