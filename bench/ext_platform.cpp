// Extension sweeps beyond the paper's evaluation:
//   (a) number of reconfiguration controllers (related work [8]
//       generalization) — relief of the single-controller bottleneck;
//   (b) HW<->SW communication bandwidth (paper §VIII future work) — how
//       transfer pricing erodes the benefit of hardware mapping.
#include <iostream>

#include "bench_common.hpp"

using namespace resched;
using namespace resched::bench;

int main() {
  const BenchConfig config = LoadConfig();
  const std::size_t n = 60;  // a contended group

  // ---- (a) controller sweep.
  std::cout << "=== Extension: reconfiguration-controller sweep (PA, " << n
            << " tasks, suite scale " << config.scale << ") ===\n";
  PrintRow({"controllers", "makespan[ms]", "reconf busy[ms]"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t controllers : {1u, 2u, 4u}) {
    BenchConfig cfg = config;
    cfg.platform = config.platform.WithReconfigurators(controllers);
    cfg.suite.graphs_per_group = config.graphs_per_group;
    RunningStat mk, busy;
    for (const Instance& instance : Group(cfg, n)) {
      const Schedule s = SchedulePa(instance);
      if (!ValidateSchedule(instance, s).ok()) {
        std::cerr << "FATAL: invalid schedule\n";
        return 1;
      }
      mk.Add(static_cast<double>(s.makespan) / 1e3);
      busy.Add(static_cast<double>(s.TotalReconfigurationTime()) / 1e3);
    }
    PrintRow({std::to_string(controllers), StrFormat("%.2f", mk.Mean()),
              StrFormat("%.2f", busy.Mean())});
    csv_rows.push_back({"controllers", std::to_string(controllers),
                        StrFormat("%.3f", mk.Mean()),
                        StrFormat("%.3f", busy.Mean())});
  }

  // ---- (b) communication-bandwidth sweep.
  std::cout << "\n=== Extension: HW<->SW bandwidth sweep (PA, " << n
            << " tasks, 0.1-4 MB payloads) ===\n";
  PrintRow({"BW [MB/s]", "makespan[ms]", "#HW tasks"});
  for (const double mbps : {0.0, 400.0, 100.0, 25.0}) {
    BenchConfig cfg = config;
    cfg.platform = config.platform.WithHwSwBandwidth(mbps * 1e6);
    cfg.suite.options.comm_bytes_lo = 100'000;
    cfg.suite.options.comm_bytes_hi = 4'000'000;
    RunningStat mk, hw;
    for (const Instance& instance : Group(cfg, n)) {
      const Schedule s = SchedulePa(instance);
      if (!ValidateSchedule(instance, s).ok()) {
        std::cerr << "FATAL: invalid schedule\n";
        return 1;
      }
      mk.Add(static_cast<double>(s.makespan) / 1e3);
      hw.Add(static_cast<double>(s.NumHardwareTasks()));
    }
    PrintRow({mbps == 0.0 ? "off" : StrFormat("%.0f", mbps),
              StrFormat("%.2f", mk.Mean()), StrFormat("%.1f", hw.Mean())});
    csv_rows.push_back({"bandwidth_mbps", StrFormat("%.0f", mbps),
                        StrFormat("%.3f", mk.Mean()),
                        StrFormat("%.3f", hw.Mean())});
  }
  WriteCsv(config, "ext_platform",
           {"sweep", "value", "makespan_ms", "metric"}, csv_rows);
  std::cout << "\nShape check: more controllers never hurt; tighter "
               "bandwidth raises the makespan.\n";
  return 0;
}
