// Table I — "Algorithms execution time".
//
// For every group of the suite, reports the PA elaboration time split into
// scheduling and floorplanning, the IS-1 time, and the IS-5 time (which is
// also the PA-R budget under the paper's equal-budget protocol). The paper
// observes PA growing ~linearly with #tasks and sitting orders of
// magnitude below IS-1/IS-5 for >= 60 tasks; our IS-k replaces Gurobi with
// a budgeted exact search, so absolute times are smaller across the board
// but the same ordering and growth shapes should hold.
#include <iostream>

#include "bench_common.hpp"

using namespace resched;
using namespace resched::bench;

int main() {
  const BenchConfig config = LoadConfig();
  std::cout << "=== Table I: algorithm execution times [s] (suite scale "
            << config.scale << ") ===\n";
  PrintRow({"#tasks", "PA sched", "PA fplan", "PA total", "IS-1",
            "PA-R/IS-5"});

  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t n : config.group_sizes) {
    ComparisonSelect select;
    select.pa = true;
    select.is1 = true;
    select.is5 = true;
    select.par = false;
    const auto rows = RunComparison(config, n, select);

    RunningStat pa_sched, pa_fplan, pa_total, is1, is5;
    for (const ComparisonRow& row : rows) {
      pa_sched.Add(row.pa_sched_seconds);
      pa_fplan.Add(row.pa_floorplan_seconds);
      pa_total.Add(row.pa_sched_seconds + row.pa_floorplan_seconds);
      is1.Add(row.is1_seconds);
      is5.Add(row.is5_seconds);
    }
    PrintRow({std::to_string(n), StrFormat("%.4f", pa_sched.Mean()),
              StrFormat("%.4f", pa_fplan.Mean()),
              StrFormat("%.4f", pa_total.Mean()),
              StrFormat("%.4f", is1.Mean()), StrFormat("%.4f", is5.Mean())});
    csv_rows.push_back({std::to_string(n), StrFormat("%.6f", pa_sched.Mean()),
                        StrFormat("%.6f", pa_fplan.Mean()),
                        StrFormat("%.6f", pa_total.Mean()),
                        StrFormat("%.6f", is1.Mean()),
                        StrFormat("%.6f", is5.Mean())});
  }
  WriteCsv(config, "table1_runtime",
           {"num_tasks", "pa_scheduling_s", "pa_floorplanning_s",
            "pa_total_s", "is1_s", "is5_s"},
           csv_rows);
  std::cout << "\nPaper shape check: PA total should grow ~linearly and be "
               "far below IS-1/IS-5 for large groups.\n";
  return 0;
}
