// Extension: schedule robustness under execution-time jitter.
//
// The paper evaluates nominal makespans only; a deployed system sees
// per-frame variation. This bench Monte-Carlo-replays the PA, PA-R and
// IS-5 schedules through the discrete-event simulator with multiplicative
// task/reconfiguration jitter and reports the mean and 95th-percentile
// stretch (simulated / nominal makespan) per algorithm.
#include <iostream>

#include "bench_common.hpp"
#include "sim/executor.hpp"

using namespace resched;
using namespace resched::bench;

namespace {

struct Robustness {
  RunningStat stretch;
  std::vector<double> samples;
};

void Sample(const Instance& instance, const Schedule& schedule,
            double jitter, std::size_t trials, Robustness& out) {
  for (std::size_t i = 0; i < trials; ++i) {
    sim::SimOptions opt;
    opt.task_jitter = jitter;
    opt.reconf_jitter = jitter;
    opt.seed = HashCombine(0x5EED, i);
    const sim::SimResult r = sim::Simulate(instance, schedule, opt);
    out.stretch.Add(r.stretch);
    out.samples.push_back(r.stretch);
  }
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  const std::size_t n = 40;
  const double jitter = 0.25;
  const std::size_t trials = 50;

  std::cout << "=== Extension: robustness under ±25% execution-time jitter "
               "(n=" << n << ", " << trials << " trials/instance, suite "
               "scale " << config.scale << ") ===\n";
  PrintRow({"algorithm", "mean stretch", "p95 stretch"});

  Robustness pa_r, par_r, is5_r;
  for (const Instance& instance : Group(config, n)) {
    const Schedule pa = SchedulePa(instance);
    Sample(instance, pa, jitter, trials, pa_r);

    PaROptions par_opt;
    par_opt.time_budget_seconds = 0.2 * config.scale + 0.05;
    par_opt.seed = 11;
    const PaRResult par = SchedulePaR(instance, par_opt);
    Sample(instance, par.best, jitter, trials, par_r);

    IskOptions is5;
    is5.k = 5;
    is5.node_budget = config.is5_node_budget;
    const Schedule is = ScheduleIsk(instance, is5);
    Sample(instance, is, jitter, trials, is5_r);
  }

  std::vector<std::vector<std::string>> csv_rows;
  auto report = [&](const char* name, Robustness& r) {
    const double p95 = Percentile(r.samples, 95.0);
    PrintRow({name, StrFormat("%.3f", r.stretch.Mean()),
              StrFormat("%.3f", p95)});
    csv_rows.push_back({name, StrFormat("%.4f", r.stretch.Mean()),
                        StrFormat("%.4f", p95)});
  };
  report("PA", pa_r);
  report("PA-R", par_r);
  report("IS-5", is5_r);

  WriteCsv(config, "ext_robustness",
           {"algorithm", "mean_stretch", "p95_stretch"}, csv_rows);
  std::cout << "\nStretch < 1 means the event-driven replay compacts "
               "schedule slack faster than jitter consumes it.\n";
  return 0;
}
