// Extension: schedule robustness under execution-time jitter and faults.
//
// The paper evaluates nominal makespans only; a deployed system sees
// per-frame variation and fabric faults. Part 1 Monte-Carlo-replays the
// PA, PA-R and IS-5 schedules through the discrete-event simulator with
// multiplicative task/reconfiguration jitter and reports the mean and
// 95th-percentile stretch (simulated / nominal makespan) per algorithm.
// Part 2 sweeps a scalar fault rate (sim::UniformFaultRates) over the PA
// schedules and reports, per recovery policy, the survival rate and the
// mean/p95 degraded stretch of the surviving runs.
#include <iostream>

#include "bench_common.hpp"
#include "sched/recovery.hpp"
#include "sim/executor.hpp"
#include "sim/faults.hpp"

using namespace resched;
using namespace resched::bench;

namespace {

struct Robustness {
  RunningStat stretch;
  std::vector<double> samples;
};

void Sample(const Instance& instance, const Schedule& schedule,
            double jitter, std::size_t trials, Robustness& out) {
  for (std::size_t i = 0; i < trials; ++i) {
    sim::SimOptions opt;
    opt.task_jitter = jitter;
    opt.reconf_jitter = jitter;
    opt.seed = DeriveSeed(kJitterSeedStream, i);
    const sim::SimResult r = sim::Simulate(instance, schedule, opt);
    out.stretch.Add(r.stretch);
    out.samples.push_back(r.stretch);
  }
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  const std::size_t n = 40;
  const double jitter = 0.25;
  const std::size_t trials = 50;

  std::cout << "=== Extension: robustness under ±25% execution-time jitter "
               "(n=" << n << ", " << trials << " trials/instance, suite "
               "scale " << config.scale << ") ===\n";
  PrintRow({"algorithm", "mean stretch", "p95 stretch"});

  Robustness pa_r, par_r, is5_r;
  for (const Instance& instance : Group(config, n)) {
    const Schedule pa = SchedulePa(instance);
    Sample(instance, pa, jitter, trials, pa_r);

    PaROptions par_opt;
    par_opt.time_budget_seconds = 0.2 * config.scale + 0.05;
    par_opt.seed = 11;
    const PaRResult par = SchedulePaR(instance, par_opt);
    Sample(instance, par.best, jitter, trials, par_r);

    IskOptions is5;
    is5.k = 5;
    is5.node_budget = config.is5_node_budget;
    const Schedule is = ScheduleIsk(instance, is5);
    Sample(instance, is, jitter, trials, is5_r);
  }

  std::vector<std::vector<std::string>> csv_rows;
  auto report = [&](const char* name, Robustness& r) {
    const double p95 = Percentile(r.samples, 95.0);
    PrintRow({name, StrFormat("%.3f", r.stretch.Mean()),
              StrFormat("%.3f", p95)});
    csv_rows.push_back({name, StrFormat("%.4f", r.stretch.Mean()),
                        StrFormat("%.4f", p95)});
  };
  report("PA", pa_r);
  report("PA-R", par_r);
  report("IS-5", is5_r);

  WriteCsv(config, "ext_robustness",
           {"algorithm", "mean_stretch", "p95_stretch"}, csv_rows);
  std::cout << "\nStretch < 1 means the event-driven replay compacts "
               "schedule slack faster than jitter consumes it.\n";

  // --- Part 2: fault-rate sweep over the PA schedules. The same seeded
  // scenarios are replayed under each recovery policy, so rows at one
  // rate differ only in how the runtime reacts.
  const std::size_t fault_trials = 30;
  std::cout << "\n=== Extension: fault-rate sweep (PA schedules, "
            << fault_trials << " trials/instance/rate) ===\n";
  PrintRow({"fault rate", "policy", "survival", "mean stretch",
            "p95 stretch"});

  std::vector<Instance> instances;
  std::vector<Schedule> pa_schedules;
  for (const Instance& instance : Group(config, n)) {
    instances.push_back(instance);
    pa_schedules.push_back(SchedulePa(instance));
  }

  const std::pair<RecoveryPolicy, const char*> policies[] = {
      {RecoveryPolicy::kRetry, "retry"},
      {RecoveryPolicy::kSoftwareFallback, "swfallback"},
      {RecoveryPolicy::kSuffixReschedule, "suffix"}};
  std::vector<std::vector<std::string>> fault_csv;
  for (const double rate : {0.05, 0.15, 0.30}) {
    for (const auto& [policy, policy_name] : policies) {
      std::size_t survived = 0;
      std::size_t total = 0;
      RunningStat stretch;
      std::vector<double> samples;
      std::size_t trial = 0;
      for (std::size_t k = 0; k < instances.size(); ++k) {
        for (std::size_t i = 0; i < fault_trials; ++i, ++trial) {
          sim::SimOptions opt;
          opt.task_jitter = jitter;
          opt.reconf_jitter = jitter;
          opt.seed = DeriveSeed(kJitterSeedStream, trial);
          opt.faults = sim::GenerateFaultScenario(
              pa_schedules[k], sim::UniformFaultRates(rate),
              DeriveSeed(kFaultSeedStream, trial));
          opt.recovery.policy = policy;
          ++total;
          try {
            const sim::SimResult r =
                sim::Simulate(instances[k], pa_schedules[k], opt);
            if (!r.recovery.survived) continue;
            ++survived;
            stretch.Add(r.stretch);
            samples.push_back(r.stretch);
          } catch (const InstanceError&) {
            // Recovery had no software fallback left: counts as a loss.
          }
        }
      }
      const double survival =
          total == 0 ? 0.0
                     : 100.0 * static_cast<double>(survived) /
                           static_cast<double>(total);
      const double p95 = Percentile(samples, 95.0);
      PrintRow({StrFormat("%.2f", rate), policy_name,
                StrFormat("%.1f%%", survival),
                StrFormat("%.3f", stretch.Mean()), StrFormat("%.3f", p95)});
      fault_csv.push_back({StrFormat("%.2f", rate), policy_name,
                           StrFormat("%.4f", survival / 100.0),
                           StrFormat("%.4f", stretch.Mean()),
                           StrFormat("%.4f", p95)});
    }
  }
  WriteCsv(config, "ext_robustness_faults",
           {"fault_rate", "policy", "survival", "mean_stretch",
            "p95_stretch"},
           fault_csv);
  std::cout << "\nSurvival is the fraction of faulted replays that finish "
               "every task; stretch statistics cover surviving runs only.\n";
  return 0;
}
