#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/csv.hpp"
#include "util/timer.hpp"

namespace resched::bench {

BenchConfig LoadConfig() {
  BenchConfig config;
  if (const char* env = std::getenv("RESCHED_BENCH_SCALE")) {
    config.scale = std::atof(env);
    if (config.scale <= 0.0) config.scale = 1.0;
  }
  if (const char* env = std::getenv("RESCHED_BENCH_OUT")) {
    config.out_dir = env;
  }
  config.graphs_per_group = std::max<std::size_t>(
      1, static_cast<std::size_t>(10.0 * config.scale + 0.5));
  config.is5_node_budget = std::max<std::size_t>(
      1000, static_cast<std::size_t>(20'000.0 * config.scale));
  for (std::size_t n = 10; n <= 100; n += 10) {
    config.group_sizes.push_back(n);
  }
  config.suite.graphs_per_group = config.graphs_per_group;
  return config;
}

std::vector<Instance> Group(const BenchConfig& config,
                            std::size_t num_tasks) {
  return GenerateSuiteGroup(config.platform, config.suite, num_tasks);
}

namespace {

void CheckValid(const Instance& instance, const Schedule& schedule) {
  const ValidationResult r = ValidateSchedule(instance, schedule);
  if (!r.ok()) {
    std::cerr << "FATAL: invalid " << schedule.algorithm << " schedule on "
              << instance.name << ": " << r.Summary() << "\n";
    std::abort();
  }
}

}  // namespace

std::vector<ComparisonRow> RunComparison(const BenchConfig& config,
                                         std::size_t num_tasks,
                                         const ComparisonSelect& select,
                                         double fallback_par_budget) {
  std::vector<ComparisonRow> rows;
  for (const Instance& instance : Group(config, num_tasks)) {
    ComparisonRow row;
    row.instance = instance.name;
    row.num_tasks = num_tasks;

    if (select.pa) {
      const Schedule pa = SchedulePa(instance);
      CheckValid(instance, pa);
      row.pa_makespan = pa.makespan;
      row.pa_sched_seconds = pa.scheduling_seconds;
      row.pa_floorplan_seconds = pa.floorplanning_seconds;
    }
    if (select.is1) {
      IskOptions o1;
      o1.k = 1;
      o1.node_budget = config.is1_node_budget;
      WallTimer timer;
      const Schedule is1 = ScheduleIsk(instance, o1);
      row.is1_seconds = timer.ElapsedSeconds();
      CheckValid(instance, is1);
      row.is1_makespan = is1.makespan;
    }
    if (select.is5) {
      IskOptions o5;
      o5.k = 5;
      o5.node_budget = config.is5_node_budget;
      WallTimer timer;
      const Schedule is5 = ScheduleIsk(instance, o5);
      row.is5_seconds = timer.ElapsedSeconds();
      CheckValid(instance, is5);
      row.is5_makespan = is5.makespan;
    }
    if (select.par) {
      PaROptions par_opt;
      par_opt.time_budget_seconds =
          select.is5 ? row.is5_seconds : fallback_par_budget;
      par_opt.seed = 0xBADC0DE;
      const PaRResult par = SchedulePaR(instance, par_opt);
      // The warm start guarantees a result.
      CheckValid(instance, par.best);
      row.par_makespan = par.best.makespan;
      row.par_seconds = par.seconds;
    }
    rows.push_back(row);
  }
  return rows;
}

double ImprovementPercent(TimeT baseline, TimeT ours) {
  if (baseline <= 0) return 0.0;
  return 100.0 * static_cast<double>(baseline - ours) /
         static_cast<double>(baseline);
}

std::string WriteCsv(const BenchConfig& config, const std::string& name,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows) {
  std::error_code ec;
  std::filesystem::create_directories(config.out_dir, ec);
  const std::string path = config.out_dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return path;
  }
  CsvWriter csv(out);
  csv.WriteRow(header);
  for (const auto& row : rows) csv.WriteRow(row);
  std::cout << "[csv] " << path << "\n";
  return path;
}

void PrintRow(const std::vector<std::string>& cells, std::size_t width) {
  for (const std::string& cell : cells) {
    std::cout << PadLeft(cell, width);
  }
  std::cout << "\n";
}

}  // namespace resched::bench
