// Shared infrastructure for the per-table/per-figure benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper's §VII
// on the synthetic suite (10 groups x graphs_per_group pseudo-random task
// graphs, 10..100 tasks, ZedBoard target). Absolute numbers differ from
// the paper (different hardware, MILPs replaced by exact searches — see
// DESIGN.md), but each harness prints the same rows/series the paper
// reports so the shapes can be compared directly.
//
// Environment knobs:
//   RESCHED_BENCH_SCALE   (default 1.0) scales graphs_per_group (x10) and
//                         the IS-5 node budget; use 0.2 for a quick pass.
//   RESCHED_BENCH_OUT     output directory for CSV dumps (default
//                         "bench_results").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "arch/zynq.hpp"
#include "baseline/isk_scheduler.hpp"
#include "core/pa_scheduler.hpp"
#include "core/randomized.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

namespace resched::bench {

struct BenchConfig {
  double scale = 1.0;
  std::size_t graphs_per_group = 10;
  std::vector<std::size_t> group_sizes;  ///< {10, 20, ..., 100}
  std::size_t is5_node_budget = 20'000;
  std::size_t is1_node_budget = 0;  ///< exhaustive (k=1 is cheap)
  std::string out_dir = "bench_results";
  Platform platform = MakeZedBoard();
  SuiteSpec suite;
};

/// Reads RESCHED_BENCH_SCALE / RESCHED_BENCH_OUT and builds the config.
BenchConfig LoadConfig();

/// The suite group for one size (deterministic).
std::vector<Instance> Group(const BenchConfig& config, std::size_t num_tasks);

/// Per-instance results of all four §VII algorithms.
struct ComparisonRow {
  std::string instance;
  std::size_t num_tasks = 0;
  TimeT pa_makespan = 0;
  TimeT par_makespan = 0;
  TimeT is1_makespan = 0;
  TimeT is5_makespan = 0;
  double pa_sched_seconds = 0.0;
  double pa_floorplan_seconds = 0.0;
  double is1_seconds = 0.0;
  double is5_seconds = 0.0;
  double par_seconds = 0.0;  ///< budget actually used (== IS-5 time)
};

/// Which algorithms RunComparison should execute.
struct ComparisonSelect {
  bool pa = true;
  bool par = false;
  bool is1 = false;
  bool is5 = false;
};

/// Runs the selected algorithms over one suite group, validating every
/// schedule (aborts loudly on a validator violation — a benchmark over
/// invalid schedules would be meaningless). PA-R gets the measured IS-5
/// time as its budget (the paper's equal-budget protocol); when IS-5 is
/// not selected, PA-R uses `fallback_par_budget` seconds.
std::vector<ComparisonRow> RunComparison(const BenchConfig& config,
                                         std::size_t num_tasks,
                                         const ComparisonSelect& select,
                                         double fallback_par_budget = 0.5);

/// Percent improvement of `ours` over `baseline` (positive = we are
/// faster), as plotted in Figs. 3-5.
double ImprovementPercent(TimeT baseline, TimeT ours);

/// Writes rows as CSV under config.out_dir (creating the directory); also
/// returns the path. Failures are reported but non-fatal.
std::string WriteCsv(const BenchConfig& config, const std::string& name,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows);

/// Prints a right-aligned text table row.
void PrintRow(const std::vector<std::string>& cells, std::size_t width = 14);

}  // namespace resched::bench
