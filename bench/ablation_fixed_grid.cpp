// Ablation: PA's demand-sized regions vs a statically partitioned
// equal-size grid (the design point of related work such as Ghiasi et al.
// [13], which the paper argues "limits the size of the solution space and
// leads to potential suboptimal results", §II). The fixed grid gets its
// best slot count per instance (auto mode), i.e. this measures PA against
// an optimistic fixed grid.
#include <iostream>

#include "baseline/fixed_grid.hpp"
#include "bench_common.hpp"

using namespace resched;
using namespace resched::bench;

int main() {
  const BenchConfig config = LoadConfig();
  std::cout << "=== Ablation: PA vs best fixed equal-size grid (suite scale "
            << config.scale << ") ===\n";
  PrintRow({"#tasks", "PA[ms]", "grid[ms]", "PA impr %"});

  std::vector<std::vector<std::string>> csv_rows;
  RunningStat overall;
  for (const std::size_t n : config.group_sizes) {
    RunningStat pa_ms, grid_ms, impr;
    for (const Instance& instance : Group(config, n)) {
      const Schedule pa = SchedulePa(instance);
      const Schedule grid = ScheduleFixedGrid(instance);
      if (!ValidateSchedule(instance, pa).ok() ||
          !ValidateSchedule(instance, grid).ok()) {
        std::cerr << "FATAL: invalid schedule\n";
        return 1;
      }
      pa_ms.Add(static_cast<double>(pa.makespan) / 1e3);
      grid_ms.Add(static_cast<double>(grid.makespan) / 1e3);
      const double x = ImprovementPercent(grid.makespan, pa.makespan);
      impr.Add(x);
      overall.Add(x);
    }
    PrintRow({std::to_string(n), StrFormat("%.2f", pa_ms.Mean()),
              StrFormat("%.2f", grid_ms.Mean()),
              StrFormat("%.1f", impr.Mean())});
    csv_rows.push_back({std::to_string(n), StrFormat("%.3f", pa_ms.Mean()),
                        StrFormat("%.3f", grid_ms.Mean()),
                        StrFormat("%.3f", impr.Mean())});
  }
  WriteCsv(config, "ablation_fixed_grid",
           {"num_tasks", "pa_ms", "fixed_grid_ms", "pa_improvement_pct"},
           csv_rows);
  std::cout << "\nOverall PA improvement over the best fixed grid: "
            << StrFormat("%.1f%%", overall.Mean())
            << " (paper §II expects demand-sized regions to win)\n";
  return 0;
}
