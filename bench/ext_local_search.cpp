// Extension: does locality in the ordering space pay? Compares, at equal
// wall-clock budgets, PA-R's independent random restarts (§VI) against
// PA-LS's first-improvement local search over the regions-definition
// order (transpositions / segment reversals / capacity nudges, with
// random restarts on stagnation). Both are warm-started with the
// deterministic PA schedule, so reported improvements are over PA.
#include <iostream>

#include "bench_common.hpp"
#include "core/local_search.hpp"

using namespace resched;
using namespace resched::bench;

int main() {
  const BenchConfig config = LoadConfig();
  const double budget = 0.6 * config.scale + 0.3;
  std::cout << "=== Extension: PA-R restarts vs PA-LS local search ("
            << budget << " s/instance, suite scale " << config.scale
            << ") ===\n";
  PrintRow({"#tasks", "PA[ms]", "PA-R[ms]", "PA-LS[ms]", "R impr%",
            "LS impr%"});

  std::vector<std::vector<std::string>> csv_rows;
  RunningStat r_overall, ls_overall;
  for (const std::size_t n : {20u, 40u, 60u, 80u, 100u}) {
    RunningStat pa_ms, par_ms, pals_ms, r_impr, ls_impr;
    for (const Instance& instance : Group(config, n)) {
      const Schedule pa = SchedulePa(instance);

      PaROptions par_opt;
      par_opt.time_budget_seconds = budget;
      par_opt.seed = 31;
      const PaRResult par = SchedulePaR(instance, par_opt);

      PaLsOptions ls_opt;
      ls_opt.time_budget_seconds = budget;
      ls_opt.seed = 31;
      const PaRResult ls = SchedulePaLs(instance, ls_opt);

      if (!ValidateSchedule(instance, par.best).ok() ||
          !ValidateSchedule(instance, ls.best).ok()) {
        std::cerr << "FATAL: invalid schedule\n";
        return 1;
      }

      pa_ms.Add(static_cast<double>(pa.makespan) / 1e3);
      par_ms.Add(static_cast<double>(par.best.makespan) / 1e3);
      pals_ms.Add(static_cast<double>(ls.best.makespan) / 1e3);
      const double ri = ImprovementPercent(pa.makespan, par.best.makespan);
      const double li = ImprovementPercent(pa.makespan, ls.best.makespan);
      r_impr.Add(ri);
      ls_impr.Add(li);
      r_overall.Add(ri);
      ls_overall.Add(li);
    }
    PrintRow({std::to_string(n), StrFormat("%.2f", pa_ms.Mean()),
              StrFormat("%.2f", par_ms.Mean()),
              StrFormat("%.2f", pals_ms.Mean()),
              StrFormat("%.1f", r_impr.Mean()),
              StrFormat("%.1f", ls_impr.Mean())});
    csv_rows.push_back(
        {std::to_string(n), StrFormat("%.3f", pa_ms.Mean()),
         StrFormat("%.3f", par_ms.Mean()), StrFormat("%.3f", pals_ms.Mean()),
         StrFormat("%.3f", r_impr.Mean()),
         StrFormat("%.3f", ls_impr.Mean())});
  }
  WriteCsv(config, "ext_local_search",
           {"num_tasks", "pa_ms", "par_ms", "pals_ms",
            "par_improvement_pct", "pals_improvement_pct"},
           csv_rows);
  std::cout << "\nOverall improvement over PA: restarts "
            << StrFormat("%.1f%%", r_overall.Mean()) << ", local search "
            << StrFormat("%.1f%%", ls_overall.Mean()) << "\n";
  return 0;
}
