// Figure 6 — "Solution improvement over time for PA-R on different
// taskgraphs": best makespan found versus elapsed time on one instance per
// size in {20, 40, 60, 80, 100}, run with an extended budget. The paper
// uses 1200 s and shows convergence within ~500 s, faster for smaller
// graphs; we scale the budget with RESCHED_BENCH_SCALE (default 3 s per
// instance — our PA core runs ~3 orders of magnitude faster than the
// authors' prototype, so convergence happens proportionally earlier).
#include <iostream>

#include "bench_common.hpp"

using namespace resched;
using namespace resched::bench;

int main() {
  const BenchConfig config = LoadConfig();
  const double budget = 3.0 * config.scale;
  std::cout << "=== Figure 6: PA-R best makespan vs time (budget " << budget
            << " s/instance) ===\n";

  std::vector<std::vector<std::string>> csv_rows;
  for (const std::size_t n : {20u, 40u, 60u, 80u, 100u}) {
    // One representative instance per size: the first of the group, as the
    // paper picks 5 of its 100 graphs.
    const Instance instance = Group(config, n).front();

    PaROptions opt;
    opt.time_budget_seconds = budget;
    opt.record_trace = true;
    opt.seed = 2016;
    const PaRResult result = SchedulePaR(instance, opt);

    std::cout << "\n-- " << instance.name << " (" << n << " tasks, "
              << result.iterations << " iterations) --\n";
    PrintRow({"t[s]", "best makespan[ms]", "iter"});
    for (const TracePoint& p : result.trace) {
      PrintRow({StrFormat("%.4f", p.seconds),
                StrFormat("%.2f", static_cast<double>(p.makespan) / 1e3),
                std::to_string(p.iteration)});
      csv_rows.push_back({std::to_string(n), StrFormat("%.6f", p.seconds),
                          std::to_string(p.makespan),
                          std::to_string(p.iteration)});
    }
    std::cout << "final: "
              << StrFormat("%.2f ms",
                           static_cast<double>(result.best.makespan) / 1e3)
              << "\n";
  }
  WriteCsv(config, "fig6_convergence",
           {"num_tasks", "seconds", "best_makespan_us", "iteration"},
           csv_rows);
  std::cout << "\nPaper shape check: curves drop quickly then flatten; "
               "larger graphs converge later.\n";
  return 0;
}
