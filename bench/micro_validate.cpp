// Micro-benchmark for the validator overlap scan (ISSUE-6): full-schedule
// validations/second, comparing
//
//   interval — the sort-and-scan exclusivity check on every target
//              (fast_scan=false, the pre-ISSUE-6 code path),
//   bitset   — the word-packed bit-timeline proof that skips the scan on
//              provably clash-free targets (fast_scan=true, the default).
//
// Both legs validate the same PA-R schedules and must produce identical
// violation lists (the fast path falls back to the interval scan on any
// clash); the harness aborts on the first disagreement, so a speedup here
// can never hide a behaviour change. Schedules are valid by construction,
// which is the common case the fast path optimizes: production callers
// (reschedd admission, bench harnesses, the simulator) validate mostly
// valid schedules, where the scan is pure proof-of-absence work.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

using namespace resched;
using namespace resched::bench;

int main() {
  const BenchConfig config = LoadConfig();
  const auto reps = static_cast<std::size_t>(
      std::max(40.0, 400.0 * config.scale));
  std::cout << "=== micro_validate: validator throughput (" << reps
            << " validations/leg) ===\n";

  std::vector<std::vector<std::string>> csv_rows;
  double speedup_product = 1.0;
  std::size_t speedup_count = 0;
  for (const std::size_t n : {20u, 40u, 80u, 100u}) {
    const Instance instance = Group(config, n).front();

    // One representative PA-R schedule per size; the validator, not the
    // scheduler, is under test here.
    PaROptions opt;
    opt.max_iterations = 8;
    opt.time_budget_seconds = 0.0;
    opt.threads = 1;
    opt.seed = 2016;
    const PaRResult result = SchedulePaR(instance, opt);
    if (!result.found) {
      std::cerr << "FATAL: no schedule found for " << instance.name << "\n";
      return 1;
    }
    const Schedule& schedule = result.best;

    std::cout << "\n-- " << instance.name << " (" << n << " tasks, "
              << schedule.regions.size() << " regions) --\n";
    PrintRow({"scan", "validations/s", "violations"});

    ValidationOptions vopt;
    vopt.fast_scan = false;
    const ValidationResult reference =
        ValidateSchedule(instance, schedule, vopt);
    vopt.fast_scan = true;
    const ValidationResult fast = ValidateSchedule(instance, schedule, vopt);
    if (fast.violations != reference.violations) {
      std::cerr << "FATAL: scan disagreement on " << instance.name
                << "\ninterval: " << reference.Summary()
                << "\nbitset:   " << fast.Summary() << "\n";
      return 1;
    }

    double interval_rate = 0.0;
    for (const bool fast_scan : {false, true}) {
      vopt.fast_scan = fast_scan;
      // Warm-up validation outside the timed region.
      (void)ValidateSchedule(instance, schedule, vopt);
      WallTimer timer;
      std::size_t violations = 0;
      for (std::size_t r = 0; r < reps; ++r) {
        violations += ValidateSchedule(instance, schedule, vopt)
                          .violations.size();
      }
      const double seconds = timer.ElapsedSeconds();
      const double rate = static_cast<double>(reps) / seconds;
      const char* name = fast_scan ? "bitset" : "interval";
      if (!fast_scan) interval_rate = rate;

      PrintRow({name, StrFormat("%.0f", rate), std::to_string(violations)});
      csv_rows.push_back({instance.name, std::to_string(n), name,
                          std::to_string(reps), StrFormat("%.6f", seconds),
                          StrFormat("%.1f", rate),
                          std::to_string(violations),
                          simd::BackendName(simd::ActiveBackend())});
      if (fast_scan && interval_rate > 0.0) {
        const double speedup = rate / interval_rate;
        std::cout << "   speedup vs interval scan: "
                  << StrFormat("%.2fx", speedup) << "\n";
        speedup_product *= speedup;
        ++speedup_count;
      }
    }
  }
  WriteCsv(config, "micro_validate",
           {"instance", "num_tasks", "scan", "validations", "seconds",
            "validations_per_sec", "violations", "simd"},
           csv_rows);
  if (speedup_count > 0) {
    std::cout << "\ngeomean speedup (bitset vs interval): "
              << StrFormat("%.2fx",
                           std::pow(speedup_product,
                                    1.0 / static_cast<double>(speedup_count)))
              << "\n";
  }
  std::cout << "Expectation: the bitset proof validates valid schedules "
               "faster than the interval scan, with identical violation "
               "lists on every schedule.\n";
  return 0;
}
