// Micro-benchmark for the PR-4 restart hot path: PA-R restarts/second and
// heap allocations/restart, comparing
//
//   legacy       — rebuild the full per-iteration state every restart and
//                  solve every floorplan query from scratch (pre-PR-4),
//   reuse        — shared PaContext + per-worker reusable PaScratch,
//   reuse+cache  — reuse plus the shared floorplan-feasibility cache
//                  (the production configuration).
//
// All legs are bit-identical by construction (per-iteration RNG streams,
// replay-exact cache hits); the harness aborts if any leg disagrees on the
// best makespan, so a speedup here can never hide a behaviour change. The
// workload is the Fig. 6 convergence setup (one suite instance per size)
// under a fixed iteration cap, at 1 and 8 worker threads.
//
// Allocations are counted by replacing global operator new with a relaxed
// atomic counter; new[] and the nothrow/aligned forms forward here, so the
// count covers every heap allocation in the process.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>

#include "bench_common.hpp"
#include "util/simd.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto al = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + al - 1) / al * al;
  if (void* p = std::aligned_alloc(al, rounded ? rounded : al)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace resched;
using namespace resched::bench;

namespace {

struct Mode {
  const char* name;
  bool reuse_scratch;
  bool floorplan_cache;
};

constexpr Mode kModes[] = {
    {"legacy", false, false},
    {"reuse", true, false},
    {"reuse+cache", true, true},
};

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  const auto iterations = static_cast<std::size_t>(
      std::max(64.0, 192.0 * config.scale));
  std::cout << "=== micro_restart: PA-R restart throughput ("
            << iterations << " restarts/leg) ===\n";

  std::vector<std::vector<std::string>> csv_rows;
  double speedup_product_8t = 1.0;
  std::size_t speedup_count_8t = 0;
  for (const std::size_t n : {20u, 40u, 80u, 100u}) {
    const Instance instance = Group(config, n).front();
    std::cout << "\n-- " << instance.name << " (" << n << " tasks) --\n";
    PrintRow({"mode", "threads", "restarts/s", "allocs/iter", "hit rate",
              "makespan[ms]"});

    TimeT reference_makespan = 0;
    double legacy_rate[2] = {0.0, 0.0};  // indexed by (threads == 8)
    for (const Mode& mode : kModes) {
      for (const std::size_t threads : {1u, 8u}) {
        PaROptions opt;
        opt.max_iterations = iterations;
        opt.time_budget_seconds = 0.0;
        opt.threads = threads;
        opt.seed = 2016;
        opt.reuse_scratch = mode.reuse_scratch;
        opt.base.floorplan_cache = mode.floorplan_cache;

        const std::uint64_t allocs_before =
            g_allocs.load(std::memory_order_relaxed);
        const PaRResult result = SchedulePaR(instance, opt);
        const std::uint64_t allocs =
            g_allocs.load(std::memory_order_relaxed) - allocs_before;

        if (!result.found) {
          std::cerr << "FATAL: no schedule found for " << instance.name
                    << "\n";
          return 1;
        }
        // Every leg must agree: the hot path is an optimization, not a
        // behaviour change.
        if (reference_makespan == 0) {
          reference_makespan = result.best.makespan;
        } else if (result.best.makespan != reference_makespan) {
          std::cerr << "FATAL: makespan mismatch in mode " << mode.name
                    << " threads=" << threads << ": "
                    << result.best.makespan << " vs " << reference_makespan
                    << "\n";
          return 1;
        }

        const double rate =
            static_cast<double>(result.iterations) / result.seconds;
        const double allocs_per_iter =
            static_cast<double>(allocs) /
            static_cast<double>(result.iterations);
        const FloorplanCacheStats& fc = result.floorplan_cache;
        if (!mode.reuse_scratch && !mode.floorplan_cache) {
          legacy_rate[threads == 8u] = rate;
        }

        PrintRow({mode.name, std::to_string(threads),
                  StrFormat("%.0f", rate), StrFormat("%.1f", allocs_per_iter),
                  StrFormat("%.2f", fc.HitRate()),
                  StrFormat("%.2f",
                            static_cast<double>(result.best.makespan) / 1e3)});
        csv_rows.push_back(
            {instance.name, std::to_string(n), mode.name,
             std::to_string(threads), std::to_string(result.iterations),
             StrFormat("%.6f", result.seconds), StrFormat("%.1f", rate),
             StrFormat("%.2f", allocs_per_iter),
             std::to_string(result.best.makespan),
             std::to_string(fc.queries), std::to_string(fc.hits),
             std::to_string(fc.misses), std::to_string(fc.evictions),
             StrFormat("%.4f", fc.HitRate()),
             simd::BackendName(simd::ActiveBackend())});
        if (mode.floorplan_cache && legacy_rate[threads == 8u] > 0.0) {
          const double speedup = rate / legacy_rate[threads == 8u];
          std::cout << "   speedup vs legacy @" << threads
                    << " threads: " << StrFormat("%.2fx", speedup) << "\n";
          if (threads == 8u) {
            speedup_product_8t *= speedup;
            ++speedup_count_8t;
          }
        }
      }
    }
  }
  WriteCsv(config, "micro_restart",
           {"instance", "num_tasks", "mode", "threads", "iterations",
            "seconds", "restarts_per_sec", "allocs_per_iter",
            "best_makespan_us", "cache_queries", "cache_hits", "cache_misses",
            "cache_evictions", "cache_hit_rate", "simd"},
           csv_rows);
  if (speedup_count_8t > 0) {
    std::cout << "\ngeomean speedup @8 threads (reuse+cache vs legacy): "
              << StrFormat("%.2fx",
                           std::pow(speedup_product_8t,
                                    1.0 / static_cast<double>(
                                              speedup_count_8t)))
              << "\n";
  }
  std::cout << "Expectation: reuse+cache sustains >= 2x the legacy restart "
               "rate at 8 threads (geomean over the Fig. 6 sizes) with "
               "identical makespans.\n";
  return 0;
}
