// Extension: fleet-scale reschedd. Two closed-loop harnesses in one
// binary, both asserting hard properties rather than just measuring:
//
//  1. Multi-tenant fairness. One daemon (workers=1, cache off) serves a
//     quiet tenant alone, then the same quiet tenant next to a chatty
//     tenant submitting 10x the requests with 10x the window. Weighted
//     DRR admission (quiet=4, chatty=1) must keep the quiet tenant's p99
//     queue wait at or below 2x its solo value — the chatty tenant is
//     not allowed to starve it. Queue-wait quantiles come from the
//     server's own per-tenant samples (stats verb), not client clocks.
//
//  2. Cross-layout consistency. The same schedule-request set runs
//     through the consistent-hash router against 1, 2, and 4 TCP
//     backends; response bodies (ids stripped) must be byte-identical
//     across layouts. Any divergence is a determinism regression and the
//     bench fails.
#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "io/instance_io.hpp"
#include "router/router.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "util/build_info.hpp"
#include "util/timer.hpp"

using namespace resched;
using namespace resched::bench;

namespace {

std::string StripId(const std::string& line) {
  const std::size_t comma = line.find(',');
  std::string body = "{";
  body += line.substr(comma + 1);
  return body;
}

std::string ScheduleLine(const Instance& instance, const std::string& id,
                         std::int64_t seed, const std::string& tenant) {
  JsonObject request;
  request["verb"] = "schedule";
  request["id"] = id;
  request["instance"] = InstanceToJson(instance);
  request["seed"] = seed;
  if (!tenant.empty()) request["tenant"] = tenant;
  return JsonValue(std::move(request)).Dump(-1);
}

// ------------------------------------------------------------- fairness --

struct TenantSpec {
  std::string name;
  std::size_t requests = 0;
  std::size_t window = 0;
};

struct TenantOutcome {
  double queue_p50_ms = 0.0;
  double queue_p99_ms = 0.0;
  std::uint64_t admitted = 0;
  std::size_t requests = 0;
  std::size_t window = 0;
};

struct FairnessResult {
  double total_seconds = 0.0;
  std::map<std::string, TenantOutcome> tenants;
  std::size_t total_requests = 0;
};

/// Drives all tenants' request lists closed-loop over one pipe-transport
/// daemon (each tenant keeps its own window outstanding) and reads the
/// per-tenant queue-wait quantiles back from the stats verb.
FairnessResult RunFairness(const Instance& instance,
                           const std::vector<TenantSpec>& specs,
                           const std::map<std::string, std::uint32_t>&
                               weights) {
  struct LiveTenant {
    const TenantSpec* spec = nullptr;
    std::vector<std::string> lines;
    std::size_t next = 0;
    std::size_t inflight = 0;
  };
  std::vector<LiveTenant> live;
  std::size_t total = 0;
  for (const TenantSpec& spec : specs) {
    LiveTenant t;
    t.spec = &spec;
    t.lines.reserve(spec.requests);
    for (std::size_t i = 0; i < spec.requests; ++i) {
      // Fixed seed: uniform service times make the queue-wait comparison
      // about admission order, not workload luck.
      t.lines.push_back(ScheduleLine(
          instance, spec.name + "-" + std::to_string(i), 7, spec.name));
    }
    total += spec.requests;
    live.push_back(std::move(t));
  }

  service::PipeTransport pipe;
  service::ServerOptions options;
  options.workers = 1;  // one executor: admission order is service order
  options.result_cache = false;
  options.queue_capacity = total + 64;  // per-tenant: never overloads
  options.tenant_weights = weights;
  options.record_latency_samples = true;  // exact p50/p99 from samples
  service::RescheddServer server(pipe, options);
  std::thread serve([&server] { server.Serve(); });
  std::string line;
  if (!pipe.Receive(line)) {
    std::cerr << "FATAL: no handshake\n";
    std::exit(1);
  }

  // Warm the executor (allocator pools, code paths) under a throwaway
  // tenant so neither measured run pays first-touch costs in its tail.
  for (std::size_t i = 0; i < 16; ++i) {
    pipe.Send(ScheduleLine(instance, "warm-" + std::to_string(i), 7,
                           "warm"));
  }
  for (std::size_t i = 0; i < 16; ++i) {
    if (!pipe.Receive(line)) {
      std::cerr << "FATAL: server closed during warmup\n";
      std::exit(1);
    }
  }

  FairnessResult result;
  result.total_requests = total;
  WallTimer clock;
  std::size_t done = 0;
  while (done < total) {
    for (LiveTenant& t : live) {
      while (t.next < t.lines.size() && t.inflight < t.spec->window) {
        pipe.Send(t.lines[t.next]);
        ++t.next;
        ++t.inflight;
      }
    }
    if (!pipe.Receive(line)) {
      std::cerr << "FATAL: server closed mid-run\n";
      std::exit(1);
    }
    const JsonValue response = JsonValue::Parse(line);
    const std::string id = response.GetString("id", "");
    const std::string tenant = id.substr(0, id.find('-'));
    bool matched = false;
    for (LiveTenant& t : live) {
      if (t.spec->name != tenant) continue;
      if (t.inflight == 0 || !response.GetBool("ok", false)) {
        std::cerr << "FATAL: dropped/duplicated/failed response: " << line
                  << "\n";
        std::exit(1);
      }
      --t.inflight;
      matched = true;
    }
    if (!matched) {
      std::cerr << "FATAL: response for unknown tenant: " << line << "\n";
      std::exit(1);
    }
    ++done;
  }
  result.total_seconds = clock.ElapsedSeconds();

  pipe.Send("{\"verb\":\"stats\",\"id\":\"__st\"}");
  while (pipe.Receive(line)) {
    if (JsonValue::Parse(line).GetString("id", "") == "__st") break;
  }
  const JsonValue stats = JsonValue::Parse(line);
  if (!stats.Contains("tenants")) {
    std::cerr << "FATAL: stats body carries no tenants section: " << line
              << "\n";
    std::exit(1);
  }
  for (const TenantSpec& spec : specs) {
    if (!stats.At("tenants").Contains(spec.name)) {
      std::cerr << "FATAL: no stats for tenant " << spec.name << "\n";
      std::exit(1);
    }
    const JsonValue& t = stats.At("tenants").At(spec.name);
    TenantOutcome outcome;
    outcome.queue_p50_ms = t.GetDouble("queue_wait_p50_ms", -1.0);
    outcome.queue_p99_ms = t.GetDouble("queue_wait_p99_ms", -1.0);
    outcome.admitted =
        static_cast<std::uint64_t>(t.GetInt("admitted", 0));
    outcome.requests = spec.requests;
    outcome.window = spec.window;
    if (outcome.admitted != spec.requests) {
      std::cerr << "FATAL: tenant " << spec.name << " admitted "
                << outcome.admitted << " of " << spec.requests << "\n";
      std::exit(1);
    }
    result.tenants[spec.name] = outcome;
  }

  pipe.Send("{\"verb\":\"shutdown\"}");
  while (pipe.Receive(line)) {
    if (line.find("\"verb\":\"shutdown\"") != std::string::npos) break;
  }
  serve.join();
  return result;
}

// -------------------------------------------------------- layout sweep --

/// One reschedd daemon on an ephemeral localhost TCP port (the bench-side
/// twin of the router test's backend; no gtest here).
class FleetBackend {
 public:
  FleetBackend() : transport_("127.0.0.1", 0) {
    service::ServerOptions options;
    options.workers = 1;
    server_ = std::make_unique<service::RescheddServer>(transport_, options);
    thread_ = std::thread([this] { server_->Serve(); });
  }

  // The router's shutdown broadcast normally stops the server first;
  // Close is idempotent and just makes teardown unconditional.
  ~FleetBackend() {
    transport_.Close();
    thread_.join();
  }

  std::uint16_t Port() const { return transport_.Port(); }

 private:
  service::TcpServerTransport transport_;
  std::unique_ptr<service::RescheddServer> server_;
  std::thread thread_;
};

struct LayoutResult {
  double total_seconds = 0.0;
  std::vector<double> latencies_ms;
  std::map<std::string, std::string> bodies;  ///< id -> stripped body
};

/// Runs the request list through a router fronting `num_backends` TCP
/// daemons, a fixed window outstanding, and collects response bodies.
LayoutResult RunLayout(const std::vector<std::string>& lines,
                       std::size_t num_backends, std::size_t window) {
  std::vector<std::unique_ptr<FleetBackend>> backends;
  router::RouterOptions options;
  for (std::size_t i = 0; i < num_backends; ++i) {
    backends.push_back(std::make_unique<FleetBackend>());
    router::RouterBackend b;
    b.name = "be" + std::to_string(i);
    b.host = "127.0.0.1";
    b.port = backends.back()->Port();
    options.backends.push_back(b);
  }
  options.queue_capacity_per_backend = lines.size() + window;

  service::PipeTransport pipe;
  router::RescheddRouter router(pipe, options);
  std::thread serve([&router] { router.Serve(); });
  std::string line;
  if (!pipe.Receive(line)) {
    std::cerr << "FATAL: no router handshake\n";
    std::exit(1);
  }

  LayoutResult result;
  std::map<std::string, double> sent_at;
  WallTimer clock;
  std::size_t next = 0;
  std::size_t done = 0;
  while (done < lines.size()) {
    while (next < lines.size() && next - done < window) {
      std::string id = "f";
      id += std::to_string(next);
      sent_at[std::move(id)] = clock.ElapsedSeconds();
      pipe.Send(lines[next]);
      ++next;
    }
    if (!pipe.Receive(line)) {
      std::cerr << "FATAL: router closed mid-run\n";
      std::exit(1);
    }
    const JsonValue response = JsonValue::Parse(line);
    const std::string id = response.GetString("id", "");
    const auto started = sent_at.find(id);
    if (started == sent_at.end() || !response.GetBool("ok", false)) {
      std::cerr << "FATAL: dropped/duplicated/failed response: " << line
                << "\n";
      std::exit(1);
    }
    result.latencies_ms.push_back(
        (clock.ElapsedSeconds() - started->second) * 1e3);
    sent_at.erase(started);
    result.bodies[id] = StripId(line);
    ++done;
  }
  result.total_seconds = clock.ElapsedSeconds();

  pipe.Send("{\"verb\":\"shutdown\",\"id\":\"__stop\"}");
  while (pipe.Receive(line)) {
    if (JsonValue::Parse(line).GetString("id", "") == "__stop") break;
  }
  serve.join();
  return result;
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  const BuildInfo& build_info = GetBuildInfo();
  std::string build = build_info.version;
  build += "+";
  build += build_info.git;
  std::vector<std::vector<std::string>> csv_rows;

  // --- part 1: weighted-fair admission under a 10:1 chatty tenant -------
  // Enough quiet samples that p99 is an order statistic, not the max of a
  // short run — the tail comparison below needs a stable baseline.
  const std::size_t quiet_requests = std::max<std::size_t>(
      150, static_cast<std::size_t>(300.0 * config.scale));
  // A mid-size instance keeps service times well above scheduler jitter,
  // so the p99 ratio reflects admission order rather than OS noise.
  const Instance uniform = Group(config, 40).front();
  // Quiet window 8 > its DRR quantum (4): the quiet tenant keeps a
  // standing backlog, so it stays in the ring and the weighted quantum
  // ratio — not ring-rejoin timing — decides its queue wait.
  const std::vector<TenantSpec> solo = {{"quiet", quiet_requests, 8}};
  const std::vector<TenantSpec> mixed = {
      {"quiet", quiet_requests, 8},
      {"chatty", quiet_requests * 10, 40},
  };
  const std::map<std::string, std::uint32_t> weights = {{"quiet", 4},
                                                        {"chatty", 1}};
  std::cout << "=== Extension: fleet fairness (quiet=" << quiet_requests
            << " reqs, chatty=10x, DRR weights quiet:4 chatty:1) ===\n";
  PrintRow({"mode", "tenant", "reqs", "window", "queue p50[ms]",
            "queue p99[ms]", "req/s"});
  const FairnessResult solo_run = RunFairness(uniform, solo, weights);
  const FairnessResult mixed_run = RunFairness(uniform, mixed, weights);
  for (const auto* run : {&solo_run, &mixed_run}) {
    const char* mode = run == &solo_run ? "solo" : "mixed";
    const double rps =
        static_cast<double>(run->total_requests) / run->total_seconds;
    for (const auto& [tenant, outcome] : run->tenants) {
      PrintRow({mode, tenant, std::to_string(outcome.requests),
                std::to_string(outcome.window),
                StrFormat("%.2f", outcome.queue_p50_ms),
                StrFormat("%.2f", outcome.queue_p99_ms),
                StrFormat("%.1f", rps)});
      std::string name = mode;
      name += "/";
      name += tenant;
      csv_rows.push_back(
          {std::move(name), mode, "1", tenant,
           std::to_string(outcome.requests),
           StrFormat("%.3f", outcome.queue_p50_ms),
           StrFormat("%.3f", outcome.queue_p99_ms), StrFormat("%.2f", rps),
           "0", build});
    }
  }
  const double solo_p99 = solo_run.tenants.at("quiet").queue_p99_ms;
  const double mixed_p99 = mixed_run.tenants.at("quiet").queue_p99_ms;
  if (mixed_p99 > 2.0 * solo_p99) {
    std::cerr << "FATAL: chatty tenant starved the quiet tenant: p99 queue"
              << " wait " << StrFormat("%.2f", mixed_p99) << "ms mixed vs "
              << StrFormat("%.2f", solo_p99) << "ms solo (limit 2x)\n";
    return 1;
  }
  std::cout << "fairness holds: quiet p99 queue wait "
            << StrFormat("%.2f", mixed_p99) << "ms mixed <= 2x "
            << StrFormat("%.2f", solo_p99) << "ms solo\n\n";

  // --- part 2: byte-identity across 1/2/4-backend layouts ---------------
  const std::size_t fleet_requests = std::max<std::size_t>(
      24, static_cast<std::size_t>(96.0 * config.scale));
  const std::size_t window = 8;
  std::vector<Instance> instances = Group(config, 10);
  const std::vector<Instance> larger = Group(config, 30);
  instances.resize(std::min<std::size_t>(instances.size(), 4));
  instances.insert(instances.end(), larger.begin(),
                   larger.begin() +
                       static_cast<std::ptrdiff_t>(
                           std::min<std::size_t>(larger.size(), 4)));
  std::vector<std::string> lines;
  lines.reserve(fleet_requests);
  for (std::size_t i = 0; i < fleet_requests; ++i) {
    lines.push_back(ScheduleLine(instances[i % instances.size()],
                                 "f" + std::to_string(i),
                                 static_cast<std::int64_t>(1 + i % 3), ""));
  }
  std::cout << "=== Extension: fleet layout consistency ("
            << fleet_requests << " requests, window " << window
            << ") ===\n";
  PrintRow({"backends", "total[s]", "req/s", "p50[ms]", "p99[ms]",
            "divergent"});
  std::map<std::string, std::string> reference;
  for (const std::size_t num_backends : {1u, 2u, 4u}) {
    const LayoutResult r = RunLayout(lines, num_backends, window);
    std::size_t divergent = 0;
    if (reference.empty()) {
      reference = r.bodies;
    } else {
      for (const auto& [id, body] : r.bodies) {
        const auto ref = reference.find(id);
        if (ref == reference.end() || ref->second != body) ++divergent;
      }
    }
    const double rps =
        static_cast<double>(fleet_requests) / r.total_seconds;
    const double p50 = Percentile(r.latencies_ms, 50.0);
    const double p99 = Percentile(r.latencies_ms, 99.0);
    PrintRow({std::to_string(num_backends),
              StrFormat("%.3f", r.total_seconds), StrFormat("%.1f", rps),
              StrFormat("%.2f", p50), StrFormat("%.2f", p99),
              std::to_string(divergent)});
    std::string name = "layout/";
    name += std::to_string(num_backends);
    csv_rows.push_back({std::move(name), "layout",
                        std::to_string(num_backends), "default",
                        std::to_string(fleet_requests),
                        StrFormat("%.3f", p50), StrFormat("%.3f", p99),
                        StrFormat("%.2f", rps),
                        std::to_string(divergent), build});
    if (divergent != 0) {
      std::cerr << "FATAL: " << divergent << " response bodies diverge at "
                << num_backends << " backends — determinism regression\n";
      return 1;
    }
  }
  std::cout << "zero cross-layout divergence across 1/2/4 backends\n";

  WriteCsv(config, "fleet",
           {"name", "mode", "backends", "tenant", "requests", "p50_ms",
            "p99_ms", "throughput_rps", "divergent", "build"},
           csv_rows);
  return 0;
}
