// Extension: crash-safety of the reschedd journal + warm start.
//
// A fork-based chaos loop. Each cycle forks the daemon into a child
// process armed with a deterministic journal crash point (io_faults
// crash_at: after K cumulative journal bytes the process writes the
// partial prefix and _exit(137)s — the observable effect of kill -9
// landing mid-write), drives it with fresh deterministic schedule
// requests over the unix socket, then restarts it with --warm-start over
// the same journal and resubmits the same lines.
//
// Hard properties asserted every cycle, and once at the end:
//  * the recovery run answers every request ok — a torn journal tail
//    never wedges a restart;
//  * any response observed before the crash is reproduced byte-identically
//    after it (dedup ledger / result cache, not a re-run);
//  * across the whole multi-crash journal history, no id is ever executed
//    twice (at most one "served":"exec" record per id);
//  * the surviving journal replays with zero mismatches.
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "io/instance_io.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "util/io_faults.hpp"

using namespace resched;
using namespace resched::bench;

namespace {

[[noreturn]] void Fatal(const std::string& message) {
  std::cerr << "FATAL: " << message << "\n";
  std::exit(1);
}

/// Runs the daemon in this (forked) process until shutdown or crash.
[[noreturn]] void ServerChild(const std::string& socket_path,
                              const std::string& journal_path,
                              std::int64_t crash_at, std::uint64_t seed) {
  if (crash_at >= 0) {
    IoFaultSpec spec;
    spec.seed = seed;
    spec.crash_at = crash_at;
    spec.enabled = true;
    io_faults::InstallForTest(spec);
  }
  try {
    service::UnixSocketServerTransport transport(socket_path);
    service::ServerOptions options;
    options.workers = 2;
    options.journal_path = journal_path;
    options.journal_sync = service::JournalSync::kAlways;
    options.warm_start_path = journal_path;
    service::RescheddServer server(transport, options);
    server.Serve();
  } catch (const std::exception& e) {
    std::cerr << "server child: " << e.what() << "\n";
    ::_exit(3);
  }
  ::_exit(0);
}

void WaitForSocket(const std::string& path) {
  struct stat st{};
  for (int i = 0; i < 500; ++i) {
    if (::stat(path.c_str(), &st) == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Fatal("server socket never appeared: " + path);
}

int WaitForChild(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) Fatal("waitpid failed");
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

struct CyclePhase {
  std::map<std::string, std::string> responses;  ///< id -> full line
  bool crashed = false;
};

/// Submits `lines` in order; stops at the first connection failure (the
/// planted crash). `strict` phases (recovery) treat any failure as fatal.
CyclePhase DriveServer(const std::string& socket_path,
                       const std::vector<std::string>& lines, bool strict) {
  service::ClientOptions copts;
  copts.max_attempts = strict ? 5 : 2;
  copts.backoff_initial_ms = 10.0;
  service::RescheddClient client(socket_path, copts);
  CyclePhase phase;
  for (const std::string& line : lines) {
    try {
      service::RescheddClient::Result result = client.Submit(line);
      const JsonValue doc = JsonValue::Parse(result.response);
      const std::string id = doc.GetString("id", "");
      if (strict && !doc.GetBool("ok", false)) {
        Fatal("recovery run answered not-ok: " + result.response);
      }
      phase.responses[id] = std::move(result.response);
    } catch (const SocketError& e) {
      if (strict) Fatal(std::string("recovery run lost the server: ") +
                        e.what());
      phase.crashed = true;  // the planted crash point fired
      break;
    }
  }
  return phase;
}

/// Asks the child to shut down gracefully; if the submit fails while the
/// child is still alive, kills it so the cycle cannot hang in waitpid.
void ShutdownServer(const std::string& socket_path, const std::string& id,
                    pid_t pid) {
  const CyclePhase bye = DriveServer(
      socket_path, {R"({"verb":"shutdown","id":")" + id + R"("})"},
      /*strict=*/false);
  if (bye.crashed) (void)::kill(pid, SIGKILL);
}

}  // namespace

int main() {
  const BenchConfig config = LoadConfig();
  const std::size_t cycles =
      std::max<std::size_t>(4, static_cast<std::size_t>(40.0 * config.scale));
  const std::size_t requests_per_cycle = 3;

  const std::string stamp = std::to_string(::getpid());
  const std::string socket_path = "/tmp/resched_ext_crash_" + stamp + ".sock";
  const std::string journal_path = "/tmp/resched_ext_crash_" + stamp + ".jsonl";
  (void)::unlink(journal_path.c_str());

  const Instance instance = Group(config, 10).front();

  std::cout << "=== Extension: journal crash safety (" << cycles
            << " kill-at-byte cycles, " << requests_per_cycle
            << " requests/cycle, suite scale " << config.scale << ") ===\n";
  PrintRow({"cycle", "crash_at", "crashed", "pre-crash", "recovered",
            "identical"});

  std::size_t total_crashes = 0;
  std::size_t total_precrash = 0;
  std::size_t total_identical = 0;
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    // Fresh deterministic work each cycle (new ids, new seeds), so the
    // crash lands on real executions, not cache hits.
    std::vector<std::string> lines;
    for (std::size_t k = 0; k < requests_per_cycle; ++k) {
      JsonObject request;
      request["verb"] = "schedule";
      request["id"] = "c" + std::to_string(cycle) + "-" + std::to_string(k);
      request["seed"] =
          static_cast<std::int64_t>(cycle * requests_per_cycle + k + 1);
      request["instance"] = InstanceToJson(instance);
      lines.push_back(JsonValue(std::move(request)).Dump(-1));
    }

    // Crash phase: the child dies after `crash_at` cumulative journal
    // bytes — sweeping the offset over cycles lands the kill inside meta,
    // request and response records alike.
    // One cycle journals ~30KB (3 ~8KB request records + responses +
    // meta); the sweep spreads crash points across that whole span so
    // meta, request and response appends all get hit over a full run.
    const std::int64_t crash_at =
        64 + static_cast<std::int64_t>((cycle * 7919) % 30000);
    pid_t pid = ::fork();
    if (pid < 0) Fatal("fork failed");
    if (pid == 0) ServerChild(socket_path, journal_path, crash_at, cycle);
    WaitForSocket(socket_path);
    CyclePhase before = DriveServer(socket_path, lines, /*strict=*/false);
    if (!before.crashed) {
      // Crash point past this cycle's journal bytes: finish gracefully
      // (or crash while journaling the shutdown ack — also legal).
      ShutdownServer(socket_path, "bye" + std::to_string(cycle), pid);
    }
    const int code = WaitForChild(pid);
    if (before.crashed && code != 137) {
      Fatal("crashed cycle exited with code " + std::to_string(code));
    }
    total_crashes += before.crashed ? 1 : 0;
    total_precrash += before.responses.size();

    // Recovery phase: warm start over the (possibly torn) journal; every
    // request must be answered ok, and every pre-crash response must be
    // reproduced byte for byte.
    pid = ::fork();
    if (pid < 0) Fatal("fork failed");
    if (pid == 0) ServerChild(socket_path, journal_path, -1, cycle);
    WaitForSocket(socket_path);
    const CyclePhase after = DriveServer(socket_path, lines, /*strict=*/true);
    if (after.responses.size() != requests_per_cycle) {
      Fatal("recovery run dropped responses");
    }
    std::size_t identical = 0;
    for (const auto& [id, body] : before.responses) {
      const auto it = after.responses.find(id);
      if (it == after.responses.end() || it->second != body) {
        Fatal("response for " + id + " not byte-identical after recovery");
      }
      ++identical;
    }
    total_identical += identical;
    ShutdownServer(socket_path, "done" + std::to_string(cycle), pid);
    if (WaitForChild(pid) != 0) Fatal("recovery server exited non-zero");

    PrintRow({std::to_string(cycle), std::to_string(crash_at),
              before.crashed ? "yes" : "no",
              std::to_string(before.responses.size()),
              std::to_string(after.responses.size()),
              std::to_string(identical)});
    csv_rows.push_back({std::to_string(cycle), std::to_string(crash_at),
                        before.crashed ? "1" : "0",
                        std::to_string(before.responses.size()),
                        std::to_string(after.responses.size()),
                        std::to_string(identical)});
  }

  // Whole-history invariants over the surviving journal.
  const service::JournalScan scan =
      service::ScanJournalFile(journal_path, /*truncate_torn=*/false);
  std::map<std::string, std::size_t> exec_count;
  for (const service::JournalRecord& record : scan.records) {
    if (record.kind == "response" && record.served == "exec") {
      if (++exec_count[record.id] > 1) {
        Fatal("id " + record.id + " executed more than once");
      }
    }
  }
  const service::ReplayOutcome outcome =
      service::ReplayJournal(journal_path);
  if (!outcome.ok()) {
    Fatal(std::to_string(outcome.mismatched) + " replay mismatch(es)");
  }

  WriteCsv(config, "crash",
           {"cycle", "crash_at", "crashed", "precrash_responses",
            "recovered_responses", "identical_responses"},
           csv_rows);
  std::cout << cycles << " cycles: " << total_crashes << " mid-write crashes, "
            << total_precrash << " pre-crash responses all reproduced ("
            << total_identical << " byte-identical), " << exec_count.size()
            << " ids executed exactly once, replay " << outcome.matched << "/"
            << outcome.replayed << " matched (" << outcome.torn_bytes
            << " torn bytes skipped)\n";
  (void)::unlink(journal_path.c_str());
  (void)::unlink(socket_path.c_str());
  return 0;
}
