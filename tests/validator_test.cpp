// Failure-injection tests for the schedule validator: build a known-valid
// schedule by hand, then break each constraint in turn and check that the
// validator pinpoints exactly that violation class.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "sched/validator.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::MakeSmallPlatform;
using testing::SwImpl;

/// Instance: chain a -> b -> c; a and b share a region (with a
/// reconfiguration between them), c runs in software.
struct Fixture {
  Instance instance;
  Schedule schedule;

  Fixture() {
    TaskGraph g;
    const TaskId a = g.AddTask("a");
    const TaskId b = g.AddTask("b");
    const TaskId c = g.AddTask("c");
    g.AddEdge(a, b);
    g.AddEdge(b, c);
    g.AddImpl(a, SwImpl(9000));
    g.AddImpl(a, HwImpl(1000, 400, 0, 0, /*module=*/1));
    g.AddImpl(b, SwImpl(9000));
    g.AddImpl(b, HwImpl(1000, 400, 0, 0, /*module=*/2));
    g.AddImpl(c, SwImpl(500));
    instance = Instance{"fixture", MakeSmallPlatform(), std::move(g)};

    const TimeT reconf =
        instance.platform.ReconfTicks(ResourceVec({400, 0, 0}));

    Schedule s;
    s.task_slots.resize(3);
    s.task_slots[0] = TaskSlot{0, 1, TargetKind::kRegion, 0, 0, 1000};
    s.task_slots[1] = TaskSlot{1, 1, TargetKind::kRegion, 0, 1000 + reconf,
                               2000 + reconf};
    s.task_slots[2] = TaskSlot{2, 0, TargetKind::kProcessor, 0, 2000 + reconf,
                               2500 + reconf};
    RegionInfo region;
    region.res = ResourceVec({400, 0, 0});
    region.reconf_time = reconf;
    region.tasks = {0, 1};
    s.regions.push_back(region);
    s.reconfigurations.push_back(ReconfSlot{0, 1, 1000, 1000 + reconf});
    s.makespan = 2500 + reconf;
    s.algorithm = "hand";
    schedule = std::move(s);
  }
};

TEST(ValidatorTest, HandBuiltScheduleIsValid) {
  const Fixture f;
  const ValidationResult r = ValidateSchedule(f.instance, f.schedule);
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_EQ(r.Summary(), "valid");
}

TEST(ValidatorTest, DetectsWrongSlotCount) {
  Fixture f;
  f.schedule.task_slots.pop_back();
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("task slots"), std::string::npos);
}

TEST(ValidatorTest, DetectsBadImplIndex) {
  Fixture f;
  f.schedule.task_slots[0].impl_index = 9;
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule).ok());
}

TEST(ValidatorTest, DetectsSlotLengthMismatch) {
  Fixture f;
  f.schedule.task_slots[0].end += 5;
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("slot length"), std::string::npos);
}

TEST(ValidatorTest, DetectsNegativeStart) {
  Fixture f;
  f.schedule.task_slots[0].start = -10;
  f.schedule.task_slots[0].end = 990;
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule).ok());
}

TEST(ValidatorTest, DetectsSoftwareImplInRegion) {
  Fixture f;
  f.schedule.task_slots[2].target = TargetKind::kRegion;
  f.schedule.task_slots[2].target_index = 0;
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule).ok());
}

TEST(ValidatorTest, DetectsHardwareImplOnCore) {
  Fixture f;
  f.schedule.task_slots[0].target = TargetKind::kProcessor;
  f.schedule.task_slots[0].target_index = 0;
  f.schedule.regions[0].tasks = {1};
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule).ok());
}

TEST(ValidatorTest, DetectsUnknownProcessor) {
  Fixture f;
  f.schedule.task_slots[2].target_index = 7;
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule).ok());
}

TEST(ValidatorTest, DetectsUnknownRegion) {
  Fixture f;
  f.schedule.task_slots[0].target_index = 3;
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule).ok());
}

TEST(ValidatorTest, DetectsImplNotFittingRegion) {
  Fixture f;
  f.schedule.regions[0].res = ResourceVec({100, 0, 0});
  f.schedule.regions[0].reconf_time =
      f.instance.platform.ReconfTicks(ResourceVec({100, 0, 0}));
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule).ok());
}

TEST(ValidatorTest, DetectsDependencyViolation) {
  Fixture f;
  // Move c to start before b ends.
  const TimeT len = f.schedule.task_slots[2].end -
                    f.schedule.task_slots[2].start;
  f.schedule.task_slots[2].start = 100;
  f.schedule.task_slots[2].end = 100 + len;
  f.schedule.makespan = f.schedule.ComputeMakespan();
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("dependency"), std::string::npos);
}

TEST(ValidatorTest, DetectsProcessorOverlap) {
  Fixture f;
  // Put a second SW task on cpu0 overlapping c.
  TaskGraph g2;
  // Rebuild instance with an extra independent SW task d.
  const TaskId a = g2.AddTask("a");
  const TaskId b = g2.AddTask("b");
  const TaskId c = g2.AddTask("c");
  const TaskId d = g2.AddTask("d");
  g2.AddEdge(a, b);
  g2.AddEdge(b, c);
  g2.AddImpl(a, SwImpl(9000));
  g2.AddImpl(a, HwImpl(1000, 400));
  g2.AddImpl(b, SwImpl(9000));
  g2.AddImpl(b, HwImpl(1000, 400));
  g2.AddImpl(c, SwImpl(500));
  g2.AddImpl(d, SwImpl(500));
  f.instance.graph = std::move(g2);

  f.schedule.task_slots.push_back(TaskSlot{
      3, 0, TargetKind::kProcessor, 0, f.schedule.task_slots[2].start + 100,
      f.schedule.task_slots[2].start + 600});
  f.schedule.makespan = f.schedule.ComputeMakespan();
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("processor 0"), std::string::npos);
}

TEST(ValidatorTest, DetectsMissingReconfiguration) {
  Fixture f;
  f.schedule.reconfigurations.clear();
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("missing reconfiguration"), std::string::npos);
}

TEST(ValidatorTest, ModuleReuseAllowsMissingReconfiguration) {
  Fixture f;
  // Make both tasks use the same module: then no reconfiguration needed.
  // Rebuild the graph so a and b share module id 1.
  TaskGraph g2;
  const TaskId a = g2.AddTask("a");
  const TaskId b = g2.AddTask("b");
  const TaskId c = g2.AddTask("c");
  g2.AddEdge(a, b);
  g2.AddEdge(b, c);
  g2.AddImpl(a, SwImpl(9000));
  g2.AddImpl(a, HwImpl(1000, 400, 0, 0, /*module=*/1));
  g2.AddImpl(b, SwImpl(9000));
  g2.AddImpl(b, HwImpl(1000, 400, 0, 0, /*module=*/1));
  g2.AddImpl(c, SwImpl(500));
  f.instance.graph = std::move(g2);
  f.schedule.reconfigurations.clear();

  ValidationOptions allow;
  allow.allow_module_reuse = true;
  EXPECT_TRUE(ValidateSchedule(f.instance, f.schedule, allow).ok());

  ValidationOptions strict;
  strict.allow_module_reuse = false;
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule, strict).ok());
}

TEST(ValidatorTest, DetectsReconfigurationTooEarly) {
  Fixture f;
  f.schedule.reconfigurations[0].start -= 200;
  f.schedule.reconfigurations[0].end -= 200;
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("starts before"), std::string::npos);
}

TEST(ValidatorTest, DetectsReconfigurationTooLate) {
  Fixture f;
  f.schedule.reconfigurations[0].start += 200;
  f.schedule.reconfigurations[0].end += 200;
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("ends after"), std::string::npos);
}

TEST(ValidatorTest, DetectsWrongReconfigurationDuration) {
  Fixture f;
  f.schedule.reconfigurations[0].end -= 10;
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule).ok());
}

TEST(ValidatorTest, DetectsWrongRegionReconfTime) {
  Fixture f;
  f.schedule.regions[0].reconf_time += 1;
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("Eq.(2)"), std::string::npos);
}

TEST(ValidatorTest, DetectsControllerOverlap) {
  Fixture f;
  // Second region with two tasks whose reconfiguration overlaps the first
  // one on the controller. Simpler: duplicate the reconf slot shifted by 1.
  f.schedule.reconfigurations.push_back(f.schedule.reconfigurations[0]);
  f.schedule.reconfigurations[1].start += 1;
  f.schedule.reconfigurations[1].end += 1;
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("overlap"), std::string::npos);
}

TEST(ValidatorTest, DetectsRegionExclusivityViolation) {
  Fixture f;
  // Slide b left so it overlaps a inside region 0 (slot length preserved, so
  // only the exclusivity/precedence constraints break).
  const TimeT len =
      f.schedule.task_slots[1].end - f.schedule.task_slots[1].start;
  f.schedule.task_slots[1].start = f.schedule.task_slots[0].start + 100;
  f.schedule.task_slots[1].end = f.schedule.task_slots[1].start + len;
  f.schedule.makespan = f.schedule.ComputeMakespan();
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("region 0"), std::string::npos);
  EXPECT_NE(r.Summary().find("overlaps"), std::string::npos);
}

TEST(ValidatorTest, DetectsReconfigurationOverlapAcrossRegions) {
  Fixture f;
  // Second region hosting an independent HW task d; its (gratuitous, but
  // structurally plausible) reconfiguration collides with region 0's slot on
  // the single controller.
  TaskGraph g2;
  const TaskId a = g2.AddTask("a");
  const TaskId b = g2.AddTask("b");
  const TaskId c = g2.AddTask("c");
  const TaskId d = g2.AddTask("d");
  g2.AddEdge(a, b);
  g2.AddEdge(b, c);
  g2.AddImpl(a, SwImpl(9000));
  g2.AddImpl(a, HwImpl(1000, 400, 0, 0, /*module=*/1));
  g2.AddImpl(b, SwImpl(9000));
  g2.AddImpl(b, HwImpl(1000, 400, 0, 0, /*module=*/2));
  g2.AddImpl(c, SwImpl(500));
  g2.AddImpl(d, SwImpl(9000));
  g2.AddImpl(d, HwImpl(1000, 400, 0, 0, /*module=*/3));
  f.instance.graph = std::move(g2);

  RegionInfo second;
  second.res = ResourceVec({400, 0, 0});
  second.reconf_time = f.schedule.regions[0].reconf_time;
  second.tasks = {3};
  f.schedule.regions.push_back(second);
  f.schedule.task_slots.push_back(
      TaskSlot{3, 1, TargetKind::kRegion, 1, 5000, 6000});
  const ReconfSlot& first = f.schedule.reconfigurations[0];
  f.schedule.reconfigurations.push_back(ReconfSlot{
      /*region=*/1, /*loads_task=*/3, first.start + 5, first.end + 5,
      /*controller=*/first.controller});
  f.schedule.makespan = f.schedule.ComputeMakespan();
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("overlap"), std::string::npos);
  EXPECT_NE(r.Summary().find("controller"), std::string::npos);
}

TEST(ValidatorTest, DetectsCapacityOverflow) {
  Fixture f;
  RegionInfo huge;
  huge.res = f.instance.platform.Device().Capacity();
  huge.reconf_time = f.instance.platform.ReconfTicks(huge.res);
  f.schedule.regions.push_back(huge);  // empty region, but capacity counted
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("capacity"), std::string::npos);
}

TEST(ValidatorTest, DetectsWrongMakespan) {
  Fixture f;
  f.schedule.makespan += 1;
  const auto r = ValidateSchedule(f.instance, f.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.Summary().find("makespan"), std::string::npos);
}

TEST(ValidatorTest, DetectsRegionTaskListMismatch) {
  Fixture f;
  f.schedule.regions[0].tasks = {0};  // slot for task 1 still points here
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule).ok());
}

TEST(ValidatorTest, DetectsInvalidAttachedFloorplan) {
  Fixture f;
  f.schedule.floorplan = {Rect{0, 0, 1, 1}};  // too small for 400 CLB
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule).ok());
}

TEST(ValidatorTest, RequireFloorplanFlagEnforcesPresence) {
  Fixture f;
  ValidationOptions opt;
  opt.require_floorplan = true;
  EXPECT_FALSE(ValidateSchedule(f.instance, f.schedule, opt).ok());
}

TEST(ValidatorTest, AcceptsValidAttachedFloorplan) {
  Fixture f;
  const auto fp = FindFloorplan(f.instance.platform.Device(),
                                f.schedule.RegionRequirements());
  ASSERT_TRUE(fp.feasible);
  f.schedule.floorplan = fp.rects;
  ValidationOptions opt;
  opt.require_floorplan = true;
  EXPECT_TRUE(ValidateSchedule(f.instance, f.schedule, opt).ok());
}

// ---------------------------------------------------------------------------
// fast_scan differential: the bit-timeline exclusivity proof must change
// nothing observable. Every corpus entry is validated with fast_scan on and
// off and the two violation lists must be byte-identical — including order.

/// Runs both scans on `schedule` (plain and executed-mode) and checks the
/// violation lists match exactly.
void ExpectScansAgree(const Instance& instance, const Schedule& schedule,
                      const std::string& label) {
  for (const bool executed : {false, true}) {
    ValidationOptions fast;
    fast.executed = executed;
    ValidationOptions slow = fast;
    slow.fast_scan = false;
    const auto rf = ValidateSchedule(instance, schedule, fast);
    const auto rs = ValidateSchedule(instance, schedule, slow);
    EXPECT_EQ(rf.violations, rs.violations)
        << label << " (executed=" << executed << "):\nfast: " << rf.Summary()
        << "\nslow: " << rs.Summary();
  }
}

TEST(ValidatorTest, FastScanMatchesIntervalScanOnMutationCorpus) {
  using Mutator = void (*)(Schedule&);
  const std::pair<const char*, Mutator> corpus[] = {
      {"valid", [](Schedule&) {}},
      {"region overlap",
       [](Schedule& s) {
         const TimeT len = s.task_slots[1].end - s.task_slots[1].start;
         s.task_slots[1].start = s.task_slots[0].start + 100;
         s.task_slots[1].end = s.task_slots[1].start + len;
       }},
      {"identical twin slots",
       [](Schedule& s) { s.task_slots[1] = s.task_slots[0]; }},
      {"zero-length slot inside another",  // bit proof must fall back
       [](Schedule& s) {
         s.task_slots[1].start = s.task_slots[0].start + 5;
         s.task_slots[1].end = s.task_slots[1].start;
       }},
      {"backwards slot",
       [](Schedule& s) { std::swap(s.task_slots[0].start,
                                   s.task_slots[0].end); }},
      {"negative start",
       [](Schedule& s) {
         s.task_slots[0].start = -50;
         s.task_slots[0].end = 950;
       }},
      {"huge horizon (coarse proof buckets)",
       [](Schedule& s) {
         s.task_slots[2].start = (TimeT{1} << 27);
         s.task_slots[2].end = (TimeT{1} << 27) + 500;
       }},
      {"duplicate reconfiguration",
       [](Schedule& s) {
         s.reconfigurations.push_back(s.reconfigurations[0]);
       }},
      {"triplicate reconfiguration",
       [](Schedule& s) {
         s.reconfigurations.push_back(s.reconfigurations[0]);
         s.reconfigurations.push_back(s.reconfigurations[0]);
       }},
      {"controller overlap",
       [](Schedule& s) {
         s.reconfigurations.push_back(s.reconfigurations[0]);
         s.reconfigurations[1].start += 1;
         s.reconfigurations[1].end += 1;
         s.reconfigurations[1].loads_task = 0;
       }},
      {"unknown targets",
       [](Schedule& s) {
         s.task_slots[1].target_index = 7;   // no such region
         s.task_slots[2].target_index = 9;   // no such processor
       }},
      {"region task list mismatch",
       [](Schedule& s) { s.regions[0].tasks = {0}; }},
  };
  for (const auto& [label, mutate] : corpus) {
    Fixture f;
    mutate(f.schedule);
    ExpectScansAgree(f.instance, f.schedule, label);
  }
}

TEST(ValidatorTest, FastScanMatchesIntervalScanUnderRandomJitter) {
  // Randomly shove every interval around (including into negative, empty
  // and backwards shapes) and re-check agreement. Each seed exercises a
  // different mix of clashes, fallbacks and clean proofs.
  Rng rng(20260808);
  for (int iter = 0; iter < 300; ++iter) {
    Fixture f;
    for (TaskSlot& slot : f.schedule.task_slots) {
      slot.start += rng.UniformInt(-200, 200);
      slot.end += rng.UniformInt(-200, 200);
      if (rng.Bernoulli(0.2)) slot.end = slot.start;  // empty slot
      if (rng.Bernoulli(0.15)) {                      // force shared targets
        slot.target_index = 0;
      }
    }
    for (ReconfSlot& r : f.schedule.reconfigurations) {
      r.start += rng.UniformInt(-200, 200);
      r.end += rng.UniformInt(-200, 200);
    }
    if (rng.Bernoulli(0.3)) {
      f.schedule.reconfigurations.push_back(f.schedule.reconfigurations[0]);
      f.schedule.reconfigurations.back().start += rng.UniformInt(-50, 50);
    }
    f.schedule.makespan = f.schedule.ComputeMakespan();
    ExpectScansAgree(f.instance, f.schedule,
                     "jitter iter " + std::to_string(iter));
  }
}

}  // namespace
}  // namespace resched
