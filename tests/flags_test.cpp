// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include "util/flags.hpp"

namespace resched {
namespace {

Flags ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, ParsesSpaceSeparatedValues) {
  const Flags f = ParseArgs({"--tasks", "30", "--algo", "pa"});
  EXPECT_EQ(f.GetInt("tasks", 0), 30);
  EXPECT_EQ(f.GetString("algo", ""), "pa");
}

TEST(FlagsTest, ParsesEqualsSyntax) {
  const Flags f = ParseArgs({"--tasks=30", "--ratio=0.5"});
  EXPECT_EQ(f.GetInt("tasks", 0), 30);
  EXPECT_DOUBLE_EQ(f.GetDouble("ratio", 0.0), 0.5);
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  const Flags f = ParseArgs({"--verbose", "--tasks", "5"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_EQ(f.GetInt("tasks", 0), 5);
}

TEST(FlagsTest, TrailingBareFlag) {
  const Flags f = ParseArgs({"--tasks", "5", "--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = ParseArgs({"run", "--n", "3", "fast"});
  ASSERT_EQ(f.Positional().size(), 2u);
  EXPECT_EQ(f.Positional()[0], "run");
  EXPECT_EQ(f.Positional()[1], "fast");
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const Flags f = ParseArgs({});
  EXPECT_EQ(f.GetInt("n", 42), 42);
  EXPECT_EQ(f.GetString("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 1.5), 1.5);
  EXPECT_TRUE(f.GetBool("b", true));
  EXPECT_FALSE(f.Has("n"));
}

TEST(FlagsTest, BooleanSpellings) {
  EXPECT_TRUE(ParseArgs({"--x", "yes"}).GetBool("x", false));
  EXPECT_TRUE(ParseArgs({"--x", "on"}).GetBool("x", false));
  EXPECT_TRUE(ParseArgs({"--x", "1"}).GetBool("x", false));
  EXPECT_FALSE(ParseArgs({"--x", "no"}).GetBool("x", true));
  EXPECT_FALSE(ParseArgs({"--x", "off"}).GetBool("x", true));
  EXPECT_FALSE(ParseArgs({"--x", "0"}).GetBool("x", true));
}

TEST(FlagsTest, TypeErrorsThrow) {
  const Flags f = ParseArgs({"--n", "abc", "--b", "maybe"});
  EXPECT_THROW((void)f.GetInt("n", 0), FlagError);
  EXPECT_THROW((void)f.GetDouble("n", 0.0), FlagError);
  EXPECT_THROW((void)f.GetBool("b", false), FlagError);
}

TEST(FlagsTest, MalformedFlagsThrow) {
  EXPECT_THROW(ParseArgs({"--"}), FlagError);
  EXPECT_THROW(ParseArgs({"--=v"}), FlagError);
}

TEST(FlagsTest, NegativeNumbersAsValues) {
  const Flags f = ParseArgs({"--n", "-5"});
  EXPECT_EQ(f.GetInt("n", 0), -5);
}

TEST(FlagsTest, UnknownFlagDetection) {
  const Flags f = ParseArgs({"--tasks", "5", "--typo", "x"});
  const auto unknown = f.UnknownFlags({"tasks", "algo"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, LastValueWins) {
  const Flags f = ParseArgs({"--n", "1", "--n", "2"});
  EXPECT_EQ(f.GetInt("n", 0), 2);
}

}  // namespace
}  // namespace resched
