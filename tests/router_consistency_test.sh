#!/usr/bin/env bash
# Distributed-consistency harness for the reschedd fleet: the same request
# set must produce byte-identical responses across shard layouts —
#   A. one backend behind the router,
#   B. four backends behind the router,
#   C. four backends where one is kill -9'd between submissions, forcing
#      the mark-unhealthy + re-route path for its shard of the keyspace.
# On top of the byte-identity check, the per-backend journals must show
# each id executed at most once across the whole fleet (exec-once).
# Invoked by ctest with the CLI binary path as $1.
set -euo pipefail

CLI=$1
TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

JOBS=8
for i in $(seq 1 "$JOBS"); do
  "$CLI" gen --tasks $((6 + i)) --seed $((40 + i)) --out "$TMP/i$i.json"
done

# Starts `serve --port 0 --journal ...`; leaves the pid in BACKEND_PID and
# the announced port in BACKEND_PORT. Not a command substitution — that
# subshell would lose the PIDS bookkeeping and block on the pipe the
# background server keeps open.
start_backend() {
  local tag=$1
  "$CLI" serve --port 0 --workers 1 --journal "$TMP/$tag.journal.jsonl" \
      > /dev/null 2> "$TMP/$tag.err" &
  BACKEND_PID=$!
  PIDS+=("$BACKEND_PID")
  BACKEND_PORT=""
  for _ in $(seq 1 100); do
    BACKEND_PORT=$(sed -n 's/^reschedd: listening on .*:\([0-9]*\)$/\1/p' \
        "$TMP/$tag.err")
    [ -n "$BACKEND_PORT" ] && break
    sleep 0.1
  done
  [ -n "$BACKEND_PORT" ] || fail "backend $tag never announced its port"
}

start_router() {
  local sock=$1 backends=$2 err=$3
  # One connect attempt per backend keeps the C-layout failover quick; the
  # re-route path, not patient dialing, is what this harness measures.
  "$CLI" route --socket "$sock" --backends "$backends" --attempts 1 \
      --probe-interval-ms 100 2> "$err" &
  PIDS+=($!)
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || fail "router socket $sock never appeared"
}

submit_range() {  # sock out_dir first last
  local sock=$1 dir=$2 first=$3 last=$4
  for i in $(seq "$first" "$last"); do
    "$CLI" submit --socket "$sock" --instance "$TMP/i$i.json" --id "c$i" \
        > "$dir/c$i.out" 2>/dev/null || fail "submit c$i via $sock failed"
  done
}

# --- layout A: a singleton fleet ---------------------------------------------
mkdir -p "$TMP/A" "$TMP/B" "$TMP/C"
start_backend a0
start_router "$TMP/ra.sock" "127.0.0.1:$BACKEND_PORT" "$TMP/ra.err"
submit_range "$TMP/ra.sock" "$TMP/A" 1 "$JOBS"
"$CLI" submit --socket "$TMP/ra.sock" --verb shutdown >/dev/null 2>&1 \
    || fail "layout A shutdown failed"

# --- layout B: four shards ----------------------------------------------------
BACKENDS_B=""
for n in 0 1 2 3; do
  start_backend "b$n"
  BACKENDS_B="$BACKENDS_B${BACKENDS_B:+,}127.0.0.1:$BACKEND_PORT"
done
start_router "$TMP/rb.sock" "$BACKENDS_B" "$TMP/rb.err"
submit_range "$TMP/rb.sock" "$TMP/B" 1 "$JOBS"
"$CLI" submit --socket "$TMP/rb.sock" --verb shutdown >/dev/null 2>&1 \
    || fail "layout B shutdown failed"

# --- layout C: four shards, one murdered mid-run ------------------------------
BACKENDS_C=""
VICTIM_PID=""
for n in 0 1 2 3; do
  start_backend "c$n"
  [ "$n" -eq 1 ] && VICTIM_PID=$BACKEND_PID
  BACKENDS_C="$BACKENDS_C${BACKENDS_C:+,}127.0.0.1:$BACKEND_PORT"
done
start_router "$TMP/rc.sock" "$BACKENDS_C" "$TMP/rc.err"
submit_range "$TMP/rc.sock" "$TMP/C" 1 $((JOBS / 2))
kill -9 "$VICTIM_PID"
wait "$VICTIM_PID" 2>/dev/null || true
# A cancel broadcast dials every backend, so it deterministically trips
# the failed-dial detector for the corpse (a schedule would only do so if
# its shard happened to land there).
"$CLI" submit --socket "$TMP/rc.sock" --verb cancel --target nosuch \
    >/dev/null 2>&1 || true
submit_range "$TMP/rc.sock" "$TMP/C" $((JOBS / 2 + 1)) "$JOBS"
"$CLI" submit --socket "$TMP/rc.sock" --verb stats > "$TMP/rc.stats" \
    2>/dev/null || fail "layout C stats failed"
grep -q '"healthy":false' "$TMP/rc.stats" \
    || fail "router never noticed the kill -9"
"$CLI" submit --socket "$TMP/rc.sock" --verb shutdown >/dev/null 2>&1 \
    || fail "layout C shutdown failed"

# --- zero cross-layout divergence --------------------------------------------
for i in $(seq 1 "$JOBS"); do
  cmp "$TMP/A/c$i.out" "$TMP/B/c$i.out" \
      || fail "c$i diverges between layouts A and B"
  cmp "$TMP/A/c$i.out" "$TMP/C/c$i.out" \
      || fail "c$i diverges between layouts A and C (kill -9 path)"
done

# --- exec-once across each fleet's journals ----------------------------------
for layout in a b c; do
  dups=$(cat "$TMP/$layout"*.journal.jsonl 2>/dev/null \
      | grep '"served":"exec"' \
      | sed -n 's/.*{"id":"\([^"]*\)".*/\1/p' | sort | uniq -d)
  [ -z "$dups" ] || fail "layout $layout executed twice: $dups"
done

echo "router_consistency OK"
