// White-box tests for the IS-k placement state: controller gap search,
// placement semantics (prefetch, module reuse, region creation), capacity
// accounting and the fixed-region extension.
#include <gtest/gtest.h>

#include "baseline/isk_state.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using isk::IskState;
using isk::PlacementOutcome;
using testing::HwImpl;
using testing::MakeSmallPlatform;
using testing::SwImpl;

Instance TwoTaskInstance() {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  const TaskId b = g.AddTask("b");
  g.AddEdge(a, b);
  for (const TaskId t : {a, b}) {
    g.AddImpl(t, SwImpl(9000));
    g.AddImpl(t, HwImpl(1000, 500, 0, 0, static_cast<std::int32_t>(t)));
  }
  return Instance{"two", MakeSmallPlatform(), std::move(g)};
}

TEST(IskStateTest, PlaceOnCoreAdvancesFreeTime) {
  const Instance inst = TwoTaskInstance();
  IskState state(inst, inst.platform.Device().Capacity());
  const Implementation& sw = inst.graph.GetImpl(0, 0);
  const PlacementOutcome first = state.PlaceOnCore(0, sw, 0, 0);
  EXPECT_EQ(first.start, 0);
  EXPECT_EQ(first.end, 9000);
  EXPECT_EQ(state.CoreFree(0), 9000);
  // Second placement on the same core waits.
  const PlacementOutcome second = state.PlaceOnCore(1, sw, 0, 0);
  EXPECT_EQ(second.start, 9000);
  // Other core unaffected.
  EXPECT_EQ(state.CoreFree(1), 0);
}

TEST(IskStateTest, NewRegionHasFreeInitialConfiguration) {
  const Instance inst = TwoTaskInstance();
  IskState state(inst, inst.platform.Device().Capacity());
  const Implementation& hw = inst.graph.GetImpl(0, 1);
  const PlacementOutcome out = state.PlaceInNewRegion(0, hw, 500);
  EXPECT_EQ(out.start, 500);  // starts at ready time: no reconfiguration
  EXPECT_FALSE(out.reconf.has_value());
  ASSERT_EQ(state.Regions().size(), 1u);
  EXPECT_EQ(state.Regions()[0].loaded_module, hw.module_id);
  EXPECT_EQ(state.UsedCap()[0], 500);
}

TEST(IskStateTest, RegionReuseEmitsReconfiguration) {
  const Instance inst = TwoTaskInstance();
  IskState state(inst, inst.platform.Device().Capacity());
  const Implementation& hw_a = inst.graph.GetImpl(0, 1);
  const Implementation& hw_b = inst.graph.GetImpl(1, 1);
  state.PlaceInNewRegion(0, hw_a, 0);  // ends at 1000
  const PlacementOutcome out =
      state.PlaceInRegion(1, hw_b, 0, /*ready=*/1000, /*module_reuse=*/true);
  ASSERT_TRUE(out.reconf.has_value());
  const TimeT reconf = state.Regions()[0].reconf_time;
  EXPECT_EQ(out.reconf->start, 1000);  // region frees at 1000
  EXPECT_EQ(out.reconf->end, 1000 + reconf);
  EXPECT_EQ(out.start, 1000 + reconf);
  EXPECT_EQ(state.ControllerTimeline().size(), 1u);
}

TEST(IskStateTest, ModuleReuseSkipsReconfiguration) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  const TaskId b = g.AddTask("b");
  g.AddEdge(a, b);
  for (const TaskId t : {a, b}) {
    g.AddImpl(t, SwImpl(9000));
    g.AddImpl(t, HwImpl(1000, 500, 0, 0, /*module=*/7));
  }
  Instance inst{"shared", MakeSmallPlatform(), std::move(g)};
  IskState state(inst, inst.platform.Device().Capacity());
  state.PlaceInNewRegion(a, inst.graph.GetImpl(a, 1), 0);
  const PlacementOutcome out = state.PlaceInRegion(
      b, inst.graph.GetImpl(b, 1), 0, 1000, /*module_reuse=*/true);
  EXPECT_FALSE(out.reconf.has_value());
  EXPECT_EQ(out.start, 1000);

  // Without reuse permission, the reconfiguration happens even for the
  // same module.
  IskState strict(inst, inst.platform.Device().Capacity());
  strict.PlaceInNewRegion(a, inst.graph.GetImpl(a, 1), 0);
  const PlacementOutcome out2 = strict.PlaceInRegion(
      b, inst.graph.GetImpl(b, 1), 0, 1000, /*module_reuse=*/false);
  EXPECT_TRUE(out2.reconf.has_value());
}

TEST(IskStateTest, ReconfigurationPrefetchesIntoGap) {
  // Region frees at 1000 but the task is only ready at 50000: the
  // reconfiguration is prefetched right at 1000, long before the start.
  const Instance inst = TwoTaskInstance();
  IskState state(inst, inst.platform.Device().Capacity());
  state.PlaceInNewRegion(0, inst.graph.GetImpl(0, 1), 0);
  const PlacementOutcome out = state.PlaceInRegion(
      1, inst.graph.GetImpl(1, 1), 0, /*ready=*/50000, true);
  ASSERT_TRUE(out.reconf.has_value());
  EXPECT_EQ(out.reconf->start, 1000);
  EXPECT_EQ(out.start, 50000);
}

TEST(IskStateTest, ControllerGapSearch) {
  const Instance inst = TwoTaskInstance();
  IskState state(inst, inst.platform.Device().Capacity());
  // Occupy [1000, 1000+r) via a real placement.
  state.PlaceInNewRegion(0, inst.graph.GetImpl(0, 1), 0);
  state.PlaceInRegion(1, inst.graph.GetImpl(1, 1), 0, 1000, true);
  const TimeT r = state.Regions()[0].reconf_time;
  // A gap search for a duration-r window at lo=0 must fit before 1000
  // only if r <= 1000.
  const TimeT got = state.EarliestControllerGap(0, 0, r);
  if (r <= 1000) {
    EXPECT_EQ(got, 0);
  } else {
    EXPECT_EQ(got, 1000 + r);
  }
  // Request starting inside the busy window lands after it.
  EXPECT_EQ(state.EarliestControllerGap(0, 1000 + r / 2, r), 1000 + r);
}

TEST(IskStateTest, BestControllerGapPrefersIdleController) {
  const Instance inst{
      "multi", MakeSmallPlatform(2).WithReconfigurators(2),
      TwoTaskInstance().graph};
  IskState state(inst, inst.platform.Device().Capacity());
  state.PlaceInNewRegion(0, inst.graph.GetImpl(0, 1), 0);
  // First reuse reconf goes to some controller at time 1000.
  state.PlaceInRegion(1, inst.graph.GetImpl(1, 1), 0, 1000, true);
  const TimeT r = state.Regions()[0].reconf_time;
  // A second request overlapping that window gets the other controller.
  const auto [controller, start] = state.BestControllerGap(1000, r);
  EXPECT_EQ(start, 1000);
  EXPECT_EQ(controller, 1u);
}

TEST(IskStateTest, CapacityEnforced) {
  const Instance inst = TwoTaskInstance();
  IskState state(inst, ResourceVec({600, 40, 60}));
  state.PlaceInNewRegion(0, inst.graph.GetImpl(0, 1), 0);
  EXPECT_FALSE(state.HasFreeCapacity(inst.graph.GetImpl(1, 1).res));
  EXPECT_THROW(state.PlaceInNewRegion(1, inst.graph.GetImpl(1, 1), 0),
               InternalError);
}

TEST(IskStateTest, AddEmptyRegionBootsUnconfigured) {
  const Instance inst = TwoTaskInstance();
  IskState state(inst, inst.platform.Device().Capacity());
  state.AddEmptyRegion(ResourceVec({800, 0, 0}));
  ASSERT_EQ(state.Regions().size(), 1u);
  EXPECT_EQ(state.Regions()[0].loaded_module, -1);
  // First placement into the empty slot costs a reconfiguration.
  const PlacementOutcome out = state.PlaceInRegion(
      0, inst.graph.GetImpl(0, 1), 0, 0, /*module_reuse=*/true);
  EXPECT_TRUE(out.reconf.has_value());
}

TEST(IskStateTest, PlacementPreconditionsChecked) {
  const Instance inst = TwoTaskInstance();
  IskState state(inst, inst.platform.Device().Capacity());
  const Implementation& sw = inst.graph.GetImpl(0, 0);
  const Implementation& hw = inst.graph.GetImpl(0, 1);
  EXPECT_THROW((void)state.PlaceOnCore(0, hw, 0, 0), InternalError);
  EXPECT_THROW((void)state.PlaceInNewRegion(0, sw, 0), InternalError);
  EXPECT_THROW((void)state.PlaceInRegion(0, hw, 0, 0, true), InternalError);
  EXPECT_THROW((void)state.PlaceOnCore(0, sw, 9, 0), InternalError);
}

}  // namespace
}  // namespace resched
