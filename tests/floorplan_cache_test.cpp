// Tests for the PR-4 floorplan-feasibility cache stack: the sharded
// concurrent memo map, requirement-list canonicalization, verdict reuse
// policy (budget-exhausted entries must never masquerade as proven
// infeasibility), and bit-identical cache-on/cache-off scheduler results.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "arch/zynq.hpp"
#include "core/pa_scheduler.hpp"
#include "floorplan/floorplan_cache.hpp"
#include "floorplan/floorplanner.hpp"
#include "taskgraph/generator.hpp"
#include "util/memo_map.hpp"

namespace resched {
namespace {

// ---------------------------------------------------------------- memo map

struct IdentityHash {
  std::uint64_t operator()(std::uint64_t k) const { return k; }
};
using U64Map = ConcurrentMemoMap<std::uint64_t, std::uint64_t, IdentityHash>;

TEST(ConcurrentMemoMapTest, FindMissThenInsertThenHit) {
  U64Map map(64);
  EXPECT_EQ(map.Find(7), nullptr);
  const auto stored = map.Insert(7, 21);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(*stored, 21u);
  const auto found = map.Find(7);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, 21u);
  const auto c = map.Snapshot();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 0u);
}

TEST(ConcurrentMemoMapTest, InsertOverwritesInPlace) {
  U64Map map(64);
  (void)map.Insert(3, 10);
  const auto old = map.Find(3);
  const auto updated = map.Insert(3, 11);
  EXPECT_EQ(*updated, 11u);
  EXPECT_EQ(*map.Find(3), 11u);
  // A reader holding the old entry keeps a stable value.
  ASSERT_NE(old, nullptr);
  EXPECT_EQ(*old, 10u);
}

TEST(ConcurrentMemoMapTest, BoundedMemoryEvictsDeterministically) {
  U64Map map(32);
  const std::size_t capacity = map.Capacity();
  for (std::uint64_t k = 0; k < 64 * capacity; ++k) {
    (void)map.Insert(k, k * 3);
  }
  const auto c = map.Snapshot();
  EXPECT_GT(c.evictions, 0u);
  // Eviction loses entries, never corrupts them: whatever is still cached
  // must carry its own value.
  std::size_t live = 0;
  for (std::uint64_t k = 0; k < 64 * capacity; ++k) {
    if (const auto v = map.Find(k)) {
      EXPECT_EQ(*v, k * 3);
      ++live;
    }
  }
  EXPECT_GT(live, 0u);
  EXPECT_LE(live, capacity);
}

TEST(ConcurrentMemoMapTest, ConcurrentHammerKeepsValuesConsistent) {
  U64Map map(128);
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kKeys = 96;  // deliberately above capacity/shard
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < 5000; ++i) {
        const std::uint64_t k = (i * (t + 1)) % kKeys;
        if (const auto v = map.Find(k)) {
          // An entry for k must always hold k's value, no matter which
          // thread inserted or evicted around it.
          if (*v != k * 7) std::abort();
        } else {
          (void)map.Insert(k, k * 7);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto c = map.Snapshot();
  EXPECT_EQ(c.hits + c.misses, kThreads * 5000u);
}

// ------------------------------------------------------- canonicalization

TEST(CanonicalRegionOrderTest, PermutationsShareOneCanonicalSequence) {
  const std::vector<ResourceVec> a{
      ResourceVec({300, 0, 0}), ResourceVec({100, 5, 0}),
      ResourceVec({100, 0, 10}), ResourceVec({100, 5, 0})};
  const std::vector<ResourceVec> b{a[2], a[0], a[3], a[1]};
  const auto oa = CanonicalRegionOrder(a);
  const auto ob = CanonicalRegionOrder(b);
  ASSERT_EQ(oa.size(), a.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[oa[k]], b[ob[k]]) << "canonical position " << k;
  }
}

TEST(CanonicalRegionOrderTest, FindFloorplanIsPermutationConsistent) {
  const FpgaDevice device = MakeXc7z020();
  const std::vector<ResourceVec> a{ResourceVec({2000, 0, 0}),
                                   ResourceVec({800, 10, 0}),
                                   ResourceVec({400, 0, 20})};
  const std::vector<ResourceVec> b{a[2], a[0], a[1]};
  const auto ra = FindFloorplan(device, a);
  const auto rb = FindFloorplan(device, b);
  ASSERT_TRUE(ra.feasible);
  ASSERT_TRUE(rb.feasible);
  // Same multiset => the canonical solve is shared, so each (distinct)
  // requirement gets the same rectangle in both queries.
  auto same = [](const Rect& x, const Rect& y) {
    return x.col0 == y.col0 && x.row0 == y.row0 && x.width == y.width &&
           x.height == y.height;
  };
  EXPECT_TRUE(same(ra.rects[0], rb.rects[1]));
  EXPECT_TRUE(same(ra.rects[1], rb.rects[2]));
  EXPECT_TRUE(same(ra.rects[2], rb.rects[0]));
}

// ----------------------------------------------------------------- cache

TEST(FloorplanCacheTest, PermutedQueryIsAHit) {
  const FpgaDevice device = MakeXc7z020();
  FloorplanCache cache(device);
  const std::vector<ResourceVec> a{ResourceVec({2000, 0, 0}),
                                   ResourceVec({800, 10, 0}),
                                   ResourceVec({400, 0, 20})};
  const std::vector<ResourceVec> b{a[2], a[0], a[1]};
  FloorplanOptions options;
  options.time_budget_seconds = 0.0;

  const auto ra = cache.Query(a, options);
  const auto rb = cache.Query(b, options);
  ASSERT_TRUE(ra.feasible);
  ASSERT_TRUE(rb.feasible);
  const FloorplanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);

  // The replayed verdict is the recorded solve: same nodes, and the same
  // rectangle per requirement after mapping back to query order.
  EXPECT_EQ(ra.nodes_explored, rb.nodes_explored);
  auto same = [](const Rect& x, const Rect& y) {
    return x.col0 == y.col0 && x.row0 == y.row0 && x.width == y.width &&
           x.height == y.height;
  };
  EXPECT_TRUE(same(ra.rects[0], rb.rects[1]));
  EXPECT_TRUE(same(ra.rects[1], rb.rects[2]));
  EXPECT_TRUE(same(ra.rects[2], rb.rects[0]));
  EXPECT_TRUE(IsValidFloorplan(device, b, rb.rects));
}

TEST(FloorplanCacheTest, MatchesUncachedAnswers) {
  const FpgaDevice device = MakeXc7z020();
  FloorplanCache cache(device);
  FloorplanOptions options;
  options.time_budget_seconds = 0.0;
  const std::vector<std::vector<ResourceVec>> queries{
      {},                                                  // trivially yes
      {ResourceVec({60000, 0, 0})},                        // aggregate no
      {ResourceVec({2000, 0, 0}), ResourceVec({800, 10, 0})},
      std::vector<ResourceVec>(8, ResourceVec({800, 0, 0})),
      std::vector<ResourceVec>(3, ResourceVec({100, 5, 0})),
  };
  for (const auto& regions : queries) {
    const auto direct = FindFloorplan(device, regions, options);
    // Twice: once solving, once replaying the memo.
    for (int round = 0; round < 2; ++round) {
      const auto cached = cache.Query(regions, options);
      EXPECT_EQ(cached.feasible, direct.feasible);
      EXPECT_EQ(cached.budget_exhausted, direct.budget_exhausted);
      ASSERT_EQ(cached.rects.size(), direct.rects.size());
      for (std::size_t i = 0; i < cached.rects.size(); ++i) {
        EXPECT_EQ(cached.rects[i].col0, direct.rects[i].col0);
        EXPECT_EQ(cached.rects[i].row0, direct.rects[i].row0);
        EXPECT_EQ(cached.rects[i].width, direct.rects[i].width);
        EXPECT_EQ(cached.rects[i].height, direct.rects[i].height);
      }
    }
  }
}

TEST(FloorplanCacheTest, BudgetExhaustedIsNeverProvenInfeasible) {
  const FpgaDevice device = MakeXc7z020();
  // Twelve such regions pass the aggregate pre-check and the per-kind
  // min-footprint root check but admit no packing; with a 12-placement
  // catalog the proof needs ~9k search nodes — past the first node-budget
  // checkpoint (1024) yet instant to complete.
  const std::vector<ResourceVec> regions(12, ResourceVec({1000, 10, 14}));

  FloorplanOptions unlimited;
  unlimited.time_budget_seconds = 0.0;
  unlimited.max_nodes = 0;
  unlimited.max_placements_per_region = 12;
  const auto truth = FindFloorplan(device, regions, unlimited);
  ASSERT_FALSE(truth.budget_exhausted);
  ASSERT_GT(truth.nodes_explored, 2048u)
      << "fixture too easy to exercise the node budget";

  FloorplanCache cache(device);
  FloorplanOptions tiny = unlimited;
  tiny.max_nodes = 1;  // first %1024 checkpoint exhausts the budget

  const auto starved = cache.Query(regions, tiny);
  EXPECT_FALSE(starved.feasible);
  ASSERT_TRUE(starved.budget_exhausted);

  // Same (or smaller) budget: the exhausted verdict replays as exhausted —
  // explicitly NOT as proven infeasibility.
  const auto replay = cache.Query(regions, tiny);
  EXPECT_TRUE(replay.budget_exhausted);
  EXPECT_EQ(replay.feasible, starved.feasible);
  EXPECT_EQ(cache.Stats().hits, 1u);

  // Larger budget: the entry is not reusable; the cache must re-solve and
  // return the ground truth, then remember the stronger verdict.
  const auto solved = cache.Query(regions, unlimited);
  EXPECT_FALSE(solved.budget_exhausted);
  EXPECT_EQ(solved.feasible, truth.feasible);
  EXPECT_EQ(solved.nodes_explored, truth.nodes_explored);

  // The stronger (proven) verdict overwrote the exhausted one and now
  // serves the unlimited query from the memo.
  const auto after = cache.Query(regions, unlimited);
  EXPECT_EQ(after.feasible, truth.feasible);
  EXPECT_FALSE(after.budget_exhausted);
}

TEST(FloorplanCacheTest, PlacementCatalogIsShared) {
  const FpgaDevice device = MakeXc7z020();
  FloorplanCache cache(device);
  const ResourceVec req({800, 0, 0});
  const auto first = cache.Placements(req, 4096);
  const auto second = cache.Placements(req, 4096);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // same memoized object
  const Fabric fabric(device);
  const std::vector<Rect> direct = EnumeratePrunedPlacements(fabric, req, 4096);
  ASSERT_EQ(first->rects.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(first->rects[i].col0, direct[i].col0);
    EXPECT_EQ(first->rects[i].row0, direct[i].row0);
    EXPECT_EQ(first->rects[i].width, direct[i].width);
    EXPECT_EQ(first->rects[i].height, direct[i].height);
  }
  // Masks must agree with the rectangles they cover.
  const PlacementSet rebuilt = BuildPlacementSet(fabric, direct);
  EXPECT_EQ(first->mask_words, rebuilt.mask_words);
  EXPECT_EQ(first->masks, rebuilt.masks);
  EXPECT_GE(cache.Stats().catalog_hits, 1u);
}

// ------------------------------------------- scheduler-level equivalence

TEST(FloorplanCacheTest, SchedulePaCacheOnOffBitIdentical) {
  GeneratorOptions gen;
  gen.num_tasks = 30;
  const Instance inst = GenerateInstance(MakeZedBoard(), gen, 23, "cache-eq");
  PaOptions with;
  with.floorplan_cache = true;
  with.floorplan.time_budget_seconds = 0.0;
  PaOptions without = with;
  without.floorplan_cache = false;

  const Schedule a = SchedulePa(inst, with);
  const Schedule b = SchedulePa(inst, without);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.floorplan_retries, b.floorplan_retries);
  ASSERT_EQ(a.floorplan.size(), b.floorplan.size());
  for (std::size_t i = 0; i < a.floorplan.size(); ++i) {
    EXPECT_EQ(a.floorplan[i].col0, b.floorplan[i].col0);
    EXPECT_EQ(a.floorplan[i].row0, b.floorplan[i].row0);
    EXPECT_EQ(a.floorplan[i].width, b.floorplan[i].width);
    EXPECT_EQ(a.floorplan[i].height, b.floorplan[i].height);
  }
  // The cache was consulted on the cached leg and silent on the other.
  EXPECT_GT(a.floorplan_cache.queries, 0u);
  EXPECT_EQ(b.floorplan_cache.queries, 0u);
}

}  // namespace
}  // namespace resched
