#!/usr/bin/env bash
# Fleet smoke for the reschedd router: two TCP backends behind a
# consistent-hash router, byte-compare against a single direct backend,
# a router stats probe, and a format check of the Prometheus textfile.
# Invoked by ctest with the CLI binary path as $1.
set -euo pipefail

CLI=$1
TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# Starts `serve --port 0` and leaves the kernel-assigned port (harvested
# from the "listening on host:port" stderr announcement) in BACKEND_PORT
# and the pid in BACKEND_PID. Deliberately not a command substitution:
# that would run in a subshell (losing the PIDS bookkeeping) and block on
# the pipe the background server keeps open.
start_backend() {
  local err=$1; shift
  "$CLI" serve --port 0 --workers 1 "$@" > /dev/null 2> "$err" &
  BACKEND_PID=$!
  PIDS+=("$BACKEND_PID")
  BACKEND_PORT=""
  for _ in $(seq 1 100); do
    BACKEND_PORT=$(sed -n 's/^reschedd: listening on .*:\([0-9]*\)$/\1/p' \
        "$err")
    [ -n "$BACKEND_PORT" ] && break
    sleep 0.1
  done
  [ -n "$BACKEND_PORT" ] || fail "backend never announced its port ($err)"
}

"$CLI" gen --tasks 10 --seed 11 --out "$TMP/a.json"
"$CLI" gen --tasks 14 --seed 12 --out "$TMP/b.json"
"$CLI" gen --tasks 18 --seed 13 --out "$TMP/c.json"

# --- reference: every request against one direct backend ----------------------
start_backend "$TMP/ref.err"
REF_PORT=$BACKEND_PORT
for job in a b c; do
  "$CLI" submit --tcp "127.0.0.1:$REF_PORT" --instance "$TMP/$job.json" \
      --id "j$job" > "$TMP/ref.$job.out" 2>/dev/null \
      || fail "direct submit $job failed"
done
"$CLI" submit --tcp "127.0.0.1:$REF_PORT" --verb shutdown > /dev/null 2>&1 \
    || fail "reference backend shutdown failed"

# --- fleet: the same requests through the router over two shards --------------
start_backend "$TMP/b1.err"
P1=$BACKEND_PORT
B1_PID=$BACKEND_PID
start_backend "$TMP/b2.err"
P2=$BACKEND_PORT
B2_PID=$BACKEND_PID
ROUTER_SOCK="$TMP/router.sock"
METRICS="$TMP/router.prom"
"$CLI" route --socket "$ROUTER_SOCK" \
    --backends "127.0.0.1:$P1,127.0.0.1:$P2" \
    --metrics-out "$METRICS" --metrics-interval-ms 100 \
    2> "$TMP/router.err" &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
for _ in $(seq 1 100); do
  [ -S "$ROUTER_SOCK" ] && break
  sleep 0.1
done
[ -S "$ROUTER_SOCK" ] || fail "router socket never appeared"

for job in a b c; do
  "$CLI" submit --socket "$ROUTER_SOCK" --instance "$TMP/$job.json" \
      --id "j$job" > "$TMP/fleet.$job.out" 2>/dev/null \
      || fail "routed submit $job failed"
  cmp "$TMP/ref.$job.out" "$TMP/fleet.$job.out" \
      || fail "routed response for $job differs from the direct one"
done

# The stats verb is answered by the router itself, not forwarded.
"$CLI" submit --socket "$ROUTER_SOCK" --verb stats > "$TMP/stats.out" \
    2>/dev/null || fail "router stats failed"
grep -q '"router":true' "$TMP/stats.out" || fail "stats not from the router"
grep -q '"healthy":true' "$TMP/stats.out" || fail "backends not healthy"

# --- metrics textfile format --------------------------------------------------
for _ in $(seq 1 100); do
  [ -s "$METRICS" ] && break
  sleep 0.1
done
[ -s "$METRICS" ] || fail "metrics textfile never written"
grep -q '^# HELP reschedd_router_up ' "$METRICS" || fail "metrics HELP line"
grep -q '^# TYPE reschedd_router_up gauge$' "$METRICS" || fail "metrics TYPE"
grep -q '^reschedd_router_backend_healthy{backend="127.0.0.1:' "$METRICS" \
    || fail "per-backend gauge missing"
# Every non-comment line must be `name{labels} value` or `name value`.
bad=$(grep -v '^#' "$METRICS" | grep -vc \
    '^[a-zA-Z_:][a-zA-Z0-9_:]*\({[^}]*}\)\? -\?[0-9.eE+-]\+$' || true)
[ "$bad" -eq 0 ] || fail "$bad malformed metric line(s) in $METRICS"

# --- drain: router shutdown broadcasts to the backends ------------------------
"$CLI" submit --socket "$ROUTER_SOCK" --verb shutdown > "$TMP/shutdown.out" \
    2>/dev/null || fail "router shutdown failed"
grep -q '"drained":true' "$TMP/shutdown.out" || fail "router did not drain"
wait "$ROUTER_PID" || fail "router exited non-zero"
# The broadcast shut the backends down too.
for _ in $(seq 1 100); do
  kill -0 "$B1_PID" 2>/dev/null || kill -0 "$B2_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$B1_PID" 2>/dev/null && fail "backend 1 survived the broadcast"
kill -0 "$B2_PID" 2>/dev/null && fail "backend 2 survived the broadcast"

echo "router_smoke OK"
