// Tests for instance JSON serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "io/instance_io.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

bool InstancesEqual(const Instance& a, const Instance& b) {
  if (a.name != b.name) return false;
  if (a.platform.NumProcessors() != b.platform.NumProcessors()) return false;
  if (a.platform.RecFreqBitsPerSec() != b.platform.RecFreqBitsPerSec()) {
    return false;
  }
  if (a.platform.Device().Capacity() != b.platform.Device().Capacity()) {
    return false;
  }
  if (a.graph.NumTasks() != b.graph.NumTasks()) return false;
  if (a.graph.NumEdges() != b.graph.NumEdges()) return false;
  for (std::size_t t = 0; t < a.graph.NumTasks(); ++t) {
    const Task& ta = a.graph.GetTask(static_cast<TaskId>(t));
    const Task& tb = b.graph.GetTask(static_cast<TaskId>(t));
    if (ta.name != tb.name || ta.impls.size() != tb.impls.size()) return false;
    for (std::size_t i = 0; i < ta.impls.size(); ++i) {
      if (ta.impls[i].kind != tb.impls[i].kind) return false;
      if (ta.impls[i].exec_time != tb.impls[i].exec_time) return false;
      if (ta.impls[i].module_id != tb.impls[i].module_id) return false;
      if (ta.impls[i].IsHardware() && !(ta.impls[i].res == tb.impls[i].res)) {
        return false;
      }
    }
    if (a.graph.Successors(static_cast<TaskId>(t)) !=
        b.graph.Successors(static_cast<TaskId>(t))) {
      return false;
    }
  }
  return true;
}

TEST(InstanceIoTest, RoundTripGeneratedInstance) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 42, "roundtrip");
  const std::string text = InstanceToString(inst);
  const Instance back = InstanceFromString(text);
  EXPECT_TRUE(InstancesEqual(inst, back));
}

TEST(InstanceIoTest, RoundTripHandCraftedInstance) {
  TaskGraph g = testing::MakeDiamond();
  Instance inst{"hand", testing::MakeSmallPlatform(), std::move(g)};
  const Instance back = InstanceFromString(InstanceToString(inst));
  EXPECT_TRUE(InstancesEqual(inst, back));
}

TEST(InstanceIoTest, SerializationIsStable) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 42, "stable");
  EXPECT_EQ(InstanceToString(inst), InstanceToString(inst));
}

TEST(InstanceIoTest, FileRoundTrip) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 11, "file");
  const std::string path =
      (std::filesystem::temp_directory_path() / "resched_io_test.json")
          .string();
  SaveInstance(inst, path);
  const Instance back = LoadInstance(path);
  EXPECT_TRUE(InstancesEqual(inst, back));
  std::remove(path.c_str());
}

TEST(InstanceIoTest, LoadMissingFileThrows) {
  EXPECT_THROW((void)LoadInstance("/nonexistent/nope.json"), InstanceError);
}

TEST(InstanceIoTest, RejectsWrongFormatMarker) {
  EXPECT_THROW((void)InstanceFromString(R"({"format": "other"})"),
               InstanceError);
}

TEST(InstanceIoTest, RejectsWrongVersion) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 1, "v");
  JsonValue json = InstanceToJson(inst);
  json.AsObject()["version"] = JsonValue(2);
  EXPECT_THROW((void)InstanceFromJson(json), InstanceError);
}

TEST(InstanceIoTest, RejectsMalformedEdge) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 1, "e");
  JsonValue json = InstanceToJson(inst);
  json.AsObject()["edges"] =
      JsonValue(JsonArray{JsonValue(JsonArray{JsonValue(0)})});
  EXPECT_THROW((void)InstanceFromJson(json), InstanceError);
}

TEST(InstanceIoTest, RejectsUnknownResourceKindInImpl) {
  const std::string text = R"({
    "format": "resched-instance", "version": 1, "name": "x",
    "platform": {"name": "p", "processors": 1,
      "recfreq_bits_per_sec": 1e8,
      "device": {"name": "d",
        "resource_kinds": [{"name": "CLB", "bits_per_unit": 10.0}],
        "fabric": {"rows": 1, "columns": [{"kind": "CLB", "units": 100}]}}},
    "tasks": [{"name": "t", "impls": [
      {"name": "sw", "kind": "sw", "time": 10},
      {"name": "hw", "kind": "hw", "time": 5, "res": {"URAM": 1}}]}],
    "edges": []
  })";
  EXPECT_THROW((void)InstanceFromString(text), InstanceError);
}

TEST(InstanceIoTest, ParsesMinimalInstance) {
  const std::string text = R"({
    "format": "resched-instance", "version": 1, "name": "mini",
    "platform": {"name": "p", "processors": 1,
      "recfreq_bits_per_sec": 1e8,
      "device": {"name": "d",
        "resource_kinds": [{"name": "CLB", "bits_per_unit": 10.0}],
        "fabric": {"rows": 2, "columns": [{"kind": "CLB", "units": 100}]}}},
    "tasks": [{"name": "t0", "impls": [
      {"name": "sw", "kind": "sw", "time": 10},
      {"name": "hw", "kind": "hw", "time": 5, "res": {"CLB": 50}}]}],
    "edges": []
  })";
  const Instance inst = InstanceFromString(text);
  EXPECT_EQ(inst.name, "mini");
  EXPECT_EQ(inst.graph.NumTasks(), 1u);
  EXPECT_EQ(inst.platform.Device().Capacity()[0], 200);
  EXPECT_EQ(inst.graph.GetImpl(0, 1).res[0], 50);
}

TEST(InstanceIoTest, UnknownImplKindRejected) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 1, "k");
  JsonValue json = InstanceToJson(inst);
  json.AsObject()["tasks"].AsArray()[0].AsObject()["impls"].AsArray()[0]
      .AsObject()["kind"] = JsonValue("fpga");
  EXPECT_THROW((void)InstanceFromJson(json), InstanceError);
}

}  // namespace
}  // namespace resched
