// Lifecycle tests for the reschedd service: protocol parsing, admission
// backpressure, result-cache bit-identity, deadlines and cancellation,
// graceful shutdown, journal replay, and both in-process transports.
//
// Timing discipline: the only wall-clock dependences are *lower* bounds
// (a budgeted PA-R request is guaranteed to still be running when the
// next line is admitted), which hold under sanitizers too — slow builds
// only make the slow request slower.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "io/instance_hash.hpp"
#include "io/instance_io.hpp"
#include "io/schedule_io.hpp"
#include "service/admission.hpp"
#include "service/client.hpp"
#include "service/fair_queue.hpp"
#include "service/framing.hpp"
#include "service/journal.hpp"
#include "service/metrics_export.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "test_helpers.hpp"
#include "util/cancel.hpp"
#include "util/mutex.hpp"
#include "util/socket.hpp"

namespace resched {
namespace {

using service::BoundedQueue;
using service::PipeTransport;
using service::RescheddServer;
using service::ServerOptions;

Instance ServiceInstance(std::size_t tasks = 6) {
  Instance instance;
  instance.name = "svc-test";
  instance.platform = testing::MakeSmallPlatform();
  instance.graph = testing::MakeChain(tasks);
  return instance;
}

std::string MakeRequest(const std::string& verb, const Instance& instance,
                        JsonObject extra = {}) {
  JsonObject request;
  request["verb"] = verb;
  request["instance"] = InstanceToJson(instance);
  for (auto& [key, value] : extra) request[key] = std::move(value);
  return JsonValue(std::move(request)).Dump(-1);
}

/// Body of a response line with the spliced id prefix removed — the part
/// the bit-identity contract is about.
std::string StripId(const std::string& line) {
  const std::size_t comma = line.find(',');
  EXPECT_NE(comma, std::string::npos) << line;
  std::string body = "{";
  body += line.substr(comma + 1);
  return body;
}

std::string ErrorCode(const std::string& line) {
  const JsonValue v = JsonValue::Parse(line);
  if (v.GetBool("ok", true)) return "";
  return v.At("error").GetString("code", "");
}

std::string IdOf(const std::string& line) {
  return JsonValue::Parse(line).GetString("id", "");
}

/// A server on an in-process pipe, serving from a background thread.
class PipeServer {
 public:
  explicit PipeServer(ServerOptions options)
      : server_(pipe_, options), thread_([this] { server_.Serve(); }) {
    EXPECT_TRUE(pipe_.Receive(handshake_));
  }

  ~PipeServer() { Shutdown(); }

  void Send(const std::string& line) { pipe_.Send(line); }

  std::string Receive() {
    std::string line;
    EXPECT_TRUE(pipe_.Receive(line));
    return line;
  }

  std::string SubmitAndWait(const std::string& line) {
    Send(line);
    return Receive();
  }

  /// Sends a shutdown verb and drains responses until its ack; idempotent.
  void Shutdown() {
    if (stopped_) return;
    stopped_ = true;
    pipe_.Send(R"({"verb":"shutdown","id":"__stop"})");
    std::string line;
    while (pipe_.Receive(line)) {
      if (IdOf(line) == "__stop") break;
    }
    thread_.join();
  }

  /// For tests that issue their own shutdown and drain manually.
  void MarkStopped() {
    stopped_ = true;
    thread_.join();
  }

  const std::string& Handshake() const { return handshake_; }
  service::ServiceCounters Counters() const { return server_.Counters(); }
  PipeTransport& Pipe() { return pipe_; }

 private:
  PipeTransport pipe_;
  RescheddServer server_;
  std::string handshake_;
  std::thread thread_;
  bool stopped_ = false;
};

// ------------------------------------------------------------ admission --

TEST(BoundedQueueTest, RejectsWhenFullAndDrainsOnClose) {
  using service::PushOutcome;
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.TryPush(1), PushOutcome::kAccepted);
  EXPECT_EQ(queue.TryPush(2), PushOutcome::kAccepted);
  // Full: backpressure, not blocking — and the reason is reported so the
  // server can answer `overloaded` rather than a generic refusal.
  EXPECT_EQ(queue.TryPush(3), PushOutcome::kFull);
  EXPECT_EQ(queue.Size(), 2u);

  queue.Close();
  // Closed: no new admissions. Distinct from kFull — the server maps this
  // to `shutting_down`, and closed wins even while the queue is also full.
  EXPECT_EQ(queue.TryPush(4), PushOutcome::kClosed);

  int out = 0;
  EXPECT_TRUE(queue.Pop(out));  // admitted items still drain
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(out));  // drained + closed
}

TEST(BoundedQueueTest, CloseWakesBlockedPop) {
  BoundedQueue<int> queue(1);
  std::thread popper([&queue] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(out));
  });
  queue.Close();
  popper.join();
}

// --------------------------------------------------------- cancellation --

TEST(CancelTokenTest, ExplicitCancelAndDeadline) {
  CancelToken token;
  EXPECT_FALSE(token.Cancelled());
  EXPECT_NO_THROW(token.ThrowIfCancelled());
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_TRUE(token.ExplicitlyCancelled());
  EXPECT_THROW(token.ThrowIfCancelled(), CancelledError);

  CancelToken expired(1e-9);
  EXPECT_TRUE(expired.Cancelled());
  EXPECT_FALSE(expired.ExplicitlyCancelled());
  EXPECT_TRUE(expired.DeadlineExpired());

  CancelToken unarmed(0.0);  // <= 0 means no deadline
  EXPECT_FALSE(unarmed.Cancelled());
}

// -------------------------------------------------------------- protocol --

TEST(ProtocolTest, RejectsMalformedAndInvalidRequests) {
  struct Case {
    const char* line;
    const char* code;
  };
  const Case cases[] = {
      {"not json", service::kErrParse},
      {"[1,2]", service::kErrParse},
      {R"({"verb":"schedule"})", service::kErrBadRequest},  // no instance
      {R"({"verb":"warp"})", service::kErrBadRequest},
      {R"({"id":"","verb":"stats"})", service::kErrBadRequest},
      {R"({"id":7,"verb":"stats"})", service::kErrBadRequest},
      {R"({"verb":"cancel"})", service::kErrBadRequest},  // no target
      {R"({"verb":"stats","deadline_ms":-1})", service::kErrBadRequest},
  };
  for (const Case& c : cases) {
    try {
      (void)service::ParseRequest(c.line);
      FAIL() << "accepted: " << c.line;
    } catch (const service::ProtocolError& e) {
      EXPECT_EQ(e.code(), c.code) << c.line;
    }
  }
}

TEST(ProtocolTest, ParseErrorsCarryTheIdWhenReadable) {
  try {
    (void)service::ParseRequest(R"({"id":"x9","verb":"nope"})");
    FAIL();
  } catch (const service::ProtocolError& e) {
    EXPECT_EQ(e.id(), "x9");
  }
}

TEST(ProtocolTest, HostileLinesAreRejectedNotCrashed) {
  // Nesting far past the request limit (32) and an oversized line (4 MiB).
  std::string deep = R"({"verb":"stats","x":)";
  deep += std::string(1000, '[');
  EXPECT_THROW((void)service::ParseRequest(deep), service::ProtocolError);

  std::string big = R"({"verb":"stats","x":")";
  big += std::string(5u << 20, 'a');
  big += "\"}";
  EXPECT_THROW((void)service::ParseRequest(big), service::ProtocolError);
}

TEST(ProtocolTest, KeyTextIgnoresIdAndDeadline) {
  const Instance instance = ServiceInstance();
  JsonObject extra_a;
  extra_a["id"] = "a";
  extra_a["deadline_ms"] = 5000;
  const service::Request a =
      service::ParseRequest(MakeRequest("schedule", instance, std::move(extra_a)));
  JsonObject extra_b;
  extra_b["id"] = "b";
  const service::Request b =
      service::ParseRequest(MakeRequest("schedule", instance, std::move(extra_b)));
  EXPECT_EQ(service::RequestKeyText(a), service::RequestKeyText(b));

  JsonObject extra_c;
  extra_c["seed"] = 99;
  const service::Request c =
      service::ParseRequest(MakeRequest("schedule", instance, std::move(extra_c)));
  EXPECT_NE(service::RequestKeyText(a), service::RequestKeyText(c));
}

TEST(ProtocolTest, WithIdEscapesHostileIds) {
  const std::string line =
      service::WithId("a\"b", service::OkBody(JsonObject{}));
  const JsonValue parsed = JsonValue::Parse(line);
  EXPECT_EQ(parsed.GetString("id", ""), "a\"b");
  EXPECT_TRUE(parsed.GetBool("ok", false));
}

// --------------------------------------------------------- canonical hash --

TEST(InstanceHashTest, FormattingDoesNotChangeTheDigest) {
  const Instance instance = ServiceInstance();
  const Digest128 digest = HashInstance(instance);

  // Pretty-print and re-parse: semantically the same instance, textually
  // very different.
  const std::string pretty = InstanceToJson(instance).Dump(2);
  const Instance reparsed = InstanceFromString(pretty);
  EXPECT_EQ(HashInstance(reparsed), digest);

  Instance different = ServiceInstance(/*tasks=*/7);
  EXPECT_NE(HashInstance(different), digest);

  EXPECT_EQ(digest.ToHex().size(), 32u);
}

// ---------------------------------------------------------------- server --

TEST(RescheddServerTest, HandshakeCarriesBuildInfo) {
  ServerOptions options;
  options.workers = 1;
  PipeServer server(options);
  const JsonValue handshake = JsonValue::Parse(server.Handshake());
  EXPECT_EQ(handshake.GetInt("protocol", -1), service::kProtocolVersion);
  const JsonValue& build = handshake.At("reschedd");
  EXPECT_FALSE(build.GetString("version", "").empty());
  EXPECT_FALSE(build.GetString("git", "").empty());
  EXPECT_FALSE(build.GetString("build_type", "").empty());
}

TEST(RescheddServerTest, ScheduleRoundTripIsValidatedJson) {
  ServerOptions options;
  options.workers = 2;
  PipeServer server(options);
  const Instance instance = ServiceInstance();
  const std::string reply =
      server.SubmitAndWait(MakeRequest("schedule", instance));
  const JsonValue response = JsonValue::Parse(reply);
  ASSERT_TRUE(response.GetBool("ok", false)) << reply;
  EXPECT_EQ(response.GetString("id", ""), "r1");
  EXPECT_GT(response.GetInt("makespan", 0), 0);
  // The embedded schedule document round-trips through schedule_io.
  const Schedule schedule =
      ScheduleFromJson(instance, response.At("schedule"));
  EXPECT_EQ(schedule.makespan, response.GetInt("makespan", -1));
  // Wall-clock fields are stripped for bit-identity.
  EXPECT_FALSE(response.At("schedule").Contains("scheduling_seconds"));
  EXPECT_FALSE(response.At("schedule").Contains("floorplanning_seconds"));
}

TEST(RescheddServerTest, DuplicateSubmissionIsServedBitIdentically) {
  ServerOptions cached;
  cached.workers = 2;
  PipeServer server(cached);
  const Instance instance = ServiceInstance();

  JsonObject id1;
  id1["id"] = "a1";
  JsonObject id2;
  id2["id"] = "a2";
  const std::string first =
      server.SubmitAndWait(MakeRequest("schedule", instance, std::move(id1)));
  const std::string second =
      server.SubmitAndWait(MakeRequest("schedule", instance, std::move(id2)));
  EXPECT_EQ(StripId(first), StripId(second));
  EXPECT_EQ(server.Counters().cache_hits, 1u);

  // And the cache is not *inventing* the bytes: a cache-disabled server
  // recomputes the same body.
  ServerOptions uncached;
  uncached.workers = 1;
  uncached.result_cache = false;
  PipeServer plain(uncached);
  const std::string recomputed =
      plain.SubmitAndWait(MakeRequest("schedule", instance));
  EXPECT_EQ(StripId(recomputed), StripId(first));
  EXPECT_EQ(plain.Counters().cache_hits, 0u);
}

TEST(RescheddServerTest, ResponsesAreIdenticalAcrossWorkerCounts) {
  const Instance instance = ServiceInstance();
  // Distinct deterministic requests (different seeds); cache off so every
  // worker actually computes.
  std::vector<std::string> requests;
  for (int seed = 1; seed <= 6; ++seed) {
    JsonObject extra;
    extra["seed"] = seed;
    std::string id = "s";
    id += std::to_string(seed);
    extra["id"] = std::move(id);
    requests.push_back(MakeRequest("schedule", instance, std::move(extra)));
  }

  auto run = [&requests](std::size_t workers) {
    ServerOptions options;
    options.workers = workers;
    options.result_cache = false;
    PipeServer server(options);
    for (const std::string& r : requests) server.Send(r);
    std::vector<std::string> bodies;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      bodies.push_back(server.Receive());
    }
    std::sort(bodies.begin(), bodies.end());
    return bodies;
  };

  EXPECT_EQ(run(1), run(4));
}

TEST(RescheddServerTest, FullQueueRejectsWithOverloaded) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  PipeServer server(options);
  const Instance instance = ServiceInstance();

  // One budgeted (slow) request occupies the single worker for ~1s...
  JsonObject slow;
  slow["id"] = "slow";
  slow["algo"] = "par";
  slow["budget"] = 1.0;
  server.Send(MakeRequest("schedule", instance, std::move(slow)));
  // ...then a burst that must overflow the depth-1 queue.
  const int kBurst = 4;
  for (int i = 0; i < kBurst; ++i) {
    JsonObject extra;
    extra["id"] = "burst" + std::to_string(i);
    server.Send(MakeRequest("schedule", instance, std::move(extra)));
  }

  std::map<std::string, std::string> responses;
  for (int i = 0; i < kBurst + 1; ++i) {
    const std::string line = server.Receive();
    EXPECT_TRUE(responses.emplace(IdOf(line), line).second)
        << "duplicate response: " << line;
  }
  // Exactly one response per submission, nothing lost.
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kBurst) + 1);
  EXPECT_EQ(ErrorCode(responses.at("slow")), "");  // the slow one completed

  int overloaded = 0;
  int ok = 0;
  for (int i = 0; i < kBurst; ++i) {
    const std::string& line = responses.at("burst" + std::to_string(i));
    const std::string code = ErrorCode(line);
    if (code == service::kErrOverloaded) {
      ++overloaded;
    } else {
      EXPECT_EQ(code, "") << line;
      ++ok;
    }
  }
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(overloaded + ok, kBurst);
  EXPECT_EQ(server.Counters().rejected_overloaded,
            static_cast<std::uint64_t>(overloaded));
}

TEST(RescheddServerTest, DeadlineExpiryIsAWellFormedError) {
  ServerOptions options;
  options.workers = 1;
  PipeServer server(options);
  const Instance instance = ServiceInstance();

  JsonObject extra;
  extra["id"] = "late";
  extra["algo"] = "par";
  extra["budget"] = 30.0;  // would run far past the deadline
  extra["deadline_ms"] = 100;
  const std::string reply =
      server.SubmitAndWait(MakeRequest("schedule", instance, std::move(extra)));
  EXPECT_EQ(ErrorCode(reply), service::kErrDeadline) << reply;
  EXPECT_EQ(IdOf(reply), "late");
  EXPECT_EQ(server.Counters().deadline_expired, 1u);
}

TEST(RescheddServerTest, CancelUnwindsQueuedAndRunningRequests) {
  ServerOptions options;
  options.workers = 1;
  PipeServer server(options);
  const Instance instance = ServiceInstance();

  JsonObject running;
  running["id"] = "running";
  running["algo"] = "par";
  running["budget"] = 30.0;
  server.Send(MakeRequest("schedule", instance, std::move(running)));
  JsonObject queued;
  queued["id"] = "queued";
  server.Send(MakeRequest("schedule", instance, std::move(queued)));

  // Cancel the queued request first, then the running one; the control
  // plane answers inline while the worker is busy.
  const std::string ack1 = server.SubmitAndWait(
      R"({"verb":"cancel","id":"c1","target":"queued"})");
  EXPECT_TRUE(JsonValue::Parse(ack1).GetBool("cancelled", false)) << ack1;
  const std::string ack2 = server.SubmitAndWait(
      R"({"verb":"cancel","id":"c2","target":"running"})");
  EXPECT_TRUE(JsonValue::Parse(ack2).GetBool("cancelled", false)) << ack2;
  const std::string ack3 = server.SubmitAndWait(
      R"({"verb":"cancel","id":"c3","target":"nonexistent"})");
  EXPECT_FALSE(JsonValue::Parse(ack3).GetBool("cancelled", true)) << ack3;

  std::map<std::string, std::string> responses;
  for (int i = 0; i < 2; ++i) {
    const std::string line = server.Receive();
    responses.emplace(IdOf(line), line);
  }
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(ErrorCode(responses.at("running")), service::kErrCancelled);
  EXPECT_EQ(ErrorCode(responses.at("queued")), service::kErrCancelled);
  EXPECT_EQ(server.Counters().cancelled, 2u);
}

TEST(RescheddServerTest, GracefulShutdownDrainsAcceptedWork) {
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 16;
  PipeServer server(options);
  const Instance instance = ServiceInstance();

  const int kJobs = 5;
  for (int i = 0; i < kJobs; ++i) {
    JsonObject extra;
    extra["id"] = "j" + std::to_string(i);
    extra["seed"] = i + 1;
    server.Send(MakeRequest("schedule", instance, std::move(extra)));
  }
  server.Send(R"({"verb":"shutdown","id":"bye"})");

  std::vector<std::string> lines;
  for (;;) {
    std::string line;
    ASSERT_TRUE(server.Pipe().Receive(line));
    lines.push_back(line);
    if (IdOf(line) == "bye") break;
  }
  server.MarkStopped();

  // Every accepted request was answered ok, and the shutdown ack came last.
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kJobs) + 1);
  std::map<std::string, std::string> by_id;
  for (const std::string& line : lines) by_id.emplace(IdOf(line), line);
  for (int i = 0; i < kJobs; ++i) {
    const std::string id = "j" + std::to_string(i);
    ASSERT_TRUE(by_id.count(id)) << "lost response for " << id;
    EXPECT_EQ(ErrorCode(by_id.at(id)), "") << by_id.at(id);
  }
  EXPECT_EQ(IdOf(lines.back()), "bye");
  EXPECT_TRUE(JsonValue::Parse(lines.back()).GetBool("drained", false));
}

TEST(RescheddServerTest, StatsReportCountersAndBuild) {
  ServerOptions options;
  options.workers = 1;
  PipeServer server(options);
  const Instance instance = ServiceInstance();
  (void)server.SubmitAndWait(MakeRequest("schedule", instance));
  const std::string reply =
      server.SubmitAndWait(R"({"verb":"stats","id":"st"})");
  const JsonValue stats = JsonValue::Parse(reply);
  ASSERT_TRUE(stats.GetBool("ok", false)) << reply;
  EXPECT_EQ(stats.At("counters").GetInt("accepted", -1), 1);
  EXPECT_EQ(stats.At("counters").GetInt("completed_ok", -1), 1);
  EXPECT_FALSE(stats.At("build").GetString("version", "").empty());
  EXPECT_EQ(stats.GetInt("workers", -1), 1);
  EXPECT_TRUE(stats.Contains("result_cache"));
}

// ---------------------------------------------------------------- journal --

TEST(JournalTest, ReplayReproducesResponsesByteForByte) {
  const std::string path =
      ::testing::TempDir() + "resched_journal_test.jsonl";
  (void)::unlink(path.c_str());

  {
    ServerOptions options;
    options.workers = 2;
    options.journal_path = path;
    PipeServer server(options);
    const Instance instance = ServiceInstance();
    // Three deterministic requests (one a cache-hit duplicate), one
    // budgeted request and a stats probe; only the first three replay.
    JsonObject s1;
    s1["seed"] = 1;
    (void)server.SubmitAndWait(MakeRequest("schedule", instance, std::move(s1)));
    JsonObject s2;
    s2["seed"] = 1;
    (void)server.SubmitAndWait(MakeRequest("schedule", instance, std::move(s2)));
    JsonObject sim;
    sim["fault_rate"] = 0.05;
    sim["trials"] = 2;
    (void)server.SubmitAndWait(MakeRequest("simulate", instance, std::move(sim)));
    JsonObject budgeted;
    budgeted["algo"] = "par";
    budgeted["budget"] = 0.05;
    (void)server.SubmitAndWait(
        MakeRequest("schedule", instance, std::move(budgeted)));
    (void)server.SubmitAndWait(R"({"verb":"stats"})");
  }

  const service::ReplayOutcome outcome = service::ReplayJournal(path);
  EXPECT_EQ(outcome.requests, 6u);  // 5 + the fixture's shutdown
  EXPECT_EQ(outcome.replayed, 3u);
  EXPECT_EQ(outcome.matched, 3u);
  EXPECT_EQ(outcome.mismatched, 0u);
  EXPECT_TRUE(outcome.ok());
  (void)::unlink(path.c_str());
}

// ------------------------------------------------------------ robustness --

TEST(RescheddServerTest, DuplicateIdIsDedupedNotReExecuted) {
  ServerOptions options;
  options.workers = 2;
  PipeServer server(options);
  const Instance instance = ServiceInstance();

  JsonObject extra;
  extra["id"] = "dup-1";
  const std::string line =
      MakeRequest("schedule", instance, std::move(extra));
  const std::string first = server.SubmitAndWait(line);
  ASSERT_TRUE(JsonValue::Parse(first).GetBool("ok", false)) << first;

  // The byte-identical resend (what a reconnecting client does) is
  // answered from the completed ledger: same bytes, no second execution.
  const std::string again = server.SubmitAndWait(line);
  EXPECT_EQ(again, first);
  const service::ServiceCounters c = server.Counters();
  EXPECT_EQ(c.deduped, 1u);
  EXPECT_EQ(c.completed_ok, 1u);  // executed exactly once
}

TEST(RescheddServerTest, ZeroDeadlineIsShedWhileQueued) {
  ServerOptions options;
  options.workers = 1;
  PipeServer server(options);
  const Instance instance = ServiceInstance();

  // An explicit 0ms deadline is already expired on arrival; the worker
  // sheds it on Pop without running the scheduler or touching the cache.
  JsonObject extra;
  extra["id"] = "expired";
  extra["deadline_ms"] = 0;
  const std::string reply =
      server.SubmitAndWait(MakeRequest("schedule", instance, std::move(extra)));
  EXPECT_EQ(ErrorCode(reply), service::kErrDeadline) << reply;
  EXPECT_EQ(IdOf(reply), "expired");
  EXPECT_NE(reply.find("while queued"), std::string::npos) << reply;
  const service::ServiceCounters c = server.Counters();
  EXPECT_EQ(c.deadline_expired, 1u);
  EXPECT_EQ(c.completed_ok, 0u);
}

TEST(RescheddServerTest, WarmStartRestoresCacheAndDedupLedger) {
  const std::string path =
      ::testing::TempDir() + "resched_warm_start_test.jsonl";
  (void)::unlink(path.c_str());
  const Instance instance = ServiceInstance();

  JsonObject first_extra;
  first_extra["id"] = "w1";
  first_extra["seed"] = 3;
  const std::string line =
      MakeRequest("schedule", instance, std::move(first_extra));
  std::string original;
  {
    ServerOptions options;
    options.workers = 1;
    options.journal_path = path;
    PipeServer server(options);
    original = server.SubmitAndWait(line);
    ASSERT_TRUE(JsonValue::Parse(original).GetBool("ok", false)) << original;
  }

  // Restart over the same journal: the resent id is answered from the
  // restored dedup ledger and a *fresh* id with the same canonical key is
  // a result-cache hit — neither re-runs the scheduler.
  ServerOptions warm;
  warm.workers = 1;
  warm.journal_path = path;
  warm.warm_start_path = path;
  PipeServer server(warm);
  EXPECT_EQ(server.SubmitAndWait(line), original);

  JsonObject fresh_extra;
  fresh_extra["id"] = "w2";
  fresh_extra["seed"] = 3;
  const std::string fresh = server.SubmitAndWait(
      MakeRequest("schedule", instance, std::move(fresh_extra)));
  EXPECT_EQ(StripId(fresh), StripId(original));

  const service::ServiceCounters c = server.Counters();
  EXPECT_EQ(c.deduped, 1u);
  EXPECT_EQ(c.cache_hits, 1u);
  EXPECT_EQ(c.completed_ok, 1u);  // only w2's ledger entry; w1 never re-ran

  const std::string stats = server.SubmitAndWait(R"({"verb":"stats"})");
  const JsonValue doc = JsonValue::Parse(stats);
  ASSERT_TRUE(doc.Contains("recovery")) << stats;
  EXPECT_GE(doc.At("recovery").GetInt("cache_restored", 0), 1);
  EXPECT_GE(doc.At("recovery").GetInt("dedup_restored", 0), 1);
  EXPECT_EQ(doc.At("recovery").GetInt("torn_bytes", -1), 0);
  server.Shutdown();
  (void)::unlink(path.c_str());
}

// -------------------------------------------------------- socket transport --

TEST(SocketTransportTest, EndToEndOverAUnixSocket) {
  const std::string path =
      "/tmp/resched_svc_test_" + std::to_string(::getpid()) + ".sock";

  service::UnixSocketServerTransport transport(path);
  ServerOptions options;
  options.workers = 1;
  RescheddServer server(transport, options);
  std::thread serve([&server] { server.Serve(); });

  UnixSocket client = UnixSocket::Connect(path);
  SocketLineReader reader(client);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(line));  // handshake greeting
  EXPECT_EQ(JsonValue::Parse(line).GetInt("protocol", -1),
            service::kProtocolVersion);

  const Instance instance = ServiceInstance();
  ASSERT_TRUE(client.SendAll(MakeRequest("schedule", instance) + "\n"));
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_TRUE(JsonValue::Parse(line).GetBool("ok", false)) << line;

  ASSERT_TRUE(client.SendAll(R"({"verb":"shutdown"})" "\n"));
  ASSERT_TRUE(reader.ReadLine(line));
  EXPECT_EQ(JsonValue::Parse(line).GetString("verb", ""), "shutdown");
  serve.join();
  client.Close();
}

// ------------------------------------------------------ duplicate keys --

TEST(ProtocolTest, DuplicateKeysAreRejectedNotCoinFlipped) {
  // Hostile payload: which verb wins would depend on parser internals.
  const std::string hostile =
      R"({"verb":"schedule","verb":"stats","id":"h1"})";
  try {
    (void)service::ParseRequest(hostile);
    FAIL() << "duplicate verb key must not parse";
  } catch (const service::ProtocolError& e) {
    EXPECT_EQ(e.code(), service::kErrParse);
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
  // The strictness is opt-in: file-loading paths keep accepting documents
  // with repeated keys (first occurrence wins, as before).
  const JsonValue lax = JsonValue::Parse(R"({"a":1,"a":2})");
  EXPECT_EQ(lax.At("a").AsInt(), 1);
  JsonParseLimits strict;
  strict.reject_duplicate_keys = true;
  EXPECT_THROW((void)JsonValue::Parse(R"({"a":1,"a":2})", strict),
               JsonError);
}

// -------------------------------------------------------------- tenants --

TEST(ProtocolTest, TenantFieldParsesValidatesAndDefaults) {
  const service::Request absent =
      service::ParseRequest(R"({"verb":"stats"})");
  EXPECT_EQ(absent.tenant, service::kDefaultTenant);

  const service::Request named =
      service::ParseRequest(R"({"verb":"stats","tenant":"acme-7.b_x"})");
  EXPECT_EQ(named.tenant, "acme-7.b_x");

  EXPECT_TRUE(service::ValidTenantName("a"));
  EXPECT_TRUE(service::ValidTenantName(std::string(64, 'x')));
  EXPECT_FALSE(service::ValidTenantName(""));
  EXPECT_FALSE(service::ValidTenantName(std::string(65, 'x')));
  EXPECT_FALSE(service::ValidTenantName("has space"));
  EXPECT_FALSE(service::ValidTenantName("quote\""));

  for (const std::string bad :
       {R"({"verb":"stats","tenant":""})",
        R"({"verb":"stats","tenant":"bad tenant"})",
        R"({"verb":"stats","tenant":42})"}) {
    try {
      (void)service::ParseRequest(bad);
      FAIL() << bad;
    } catch (const service::ProtocolError& e) {
      EXPECT_EQ(e.code(), service::kErrBadRequest) << bad;
    }
  }
}

TEST(RescheddServerTest, TenantFieldDoesNotChangeResponseBodies) {
  ServerOptions options;
  options.workers = 1;
  PipeServer server(options);
  const Instance instance = ServiceInstance();

  const std::string plain = server.SubmitAndWait(
      MakeRequest("schedule", instance, {{"id", "t1"}, {"seed", 7}}));
  const std::string tenanted = server.SubmitAndWait(MakeRequest(
      "schedule", instance,
      {{"id", "t2"}, {"seed", 7}, {"tenant", "acme"}}));
  ASSERT_TRUE(JsonValue::Parse(plain).GetBool("ok", false)) << plain;
  // The tenant routes admission only; the response body (and the shared
  // result cache: "served":"cache" here proves cross-tenant reuse) is
  // byte-identical to the tenantless request.
  EXPECT_EQ(StripId(plain), StripId(tenanted));
}

// ----------------------------------------------------- weighted fairness --

using IntFairQueue = service::WeightedFairQueue<int>;

TEST(FairQueueTest, SingleTenantDegeneratesToFifo) {
  service::FairQueueOptions options;
  options.per_tenant_capacity = 3;
  IntFairQueue queue(options);
  EXPECT_EQ(queue.TryPush("default", 1), service::PushOutcome::kAccepted);
  EXPECT_EQ(queue.TryPush("default", 2), service::PushOutcome::kAccepted);
  EXPECT_EQ(queue.TryPush("default", 3), service::PushOutcome::kAccepted);
  EXPECT_EQ(queue.TryPush("default", 4), service::PushOutcome::kFull);
  int out = 0;
  for (const int expect : {1, 2, 3}) {
    ASSERT_TRUE(queue.Pop(out));
    EXPECT_EQ(out, expect);
    queue.OnDone("default");
  }
  queue.Close();
  EXPECT_EQ(queue.TryPush("default", 5), service::PushOutcome::kClosed);
  EXPECT_FALSE(queue.Pop(out));
}

TEST(FairQueueTest, WeightsGiveProportionalTurns) {
  service::FairQueueOptions options;
  options.weights["heavy"] = 2;
  IntFairQueue queue(options);
  // heavy enters the ring first; values encode tenant (100s = heavy).
  for (int i = 0; i < 6; ++i) queue.TryPush("heavy", 100 + i);
  for (int i = 0; i < 3; ++i) queue.TryPush("light", 200 + i);
  std::vector<int> order;
  int out = 0;
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(queue.Pop(out));
    order.push_back(out);
    queue.OnDone(out < 200 ? "heavy" : "light");
  }
  // DRR with w=2 vs w=1: two heavy per light while both are backlogged,
  // then the heavy tail drains.
  EXPECT_EQ(order, (std::vector<int>{100, 101, 200, 102, 103, 201, 104, 105,
                                     202}));
}

TEST(FairQueueTest, InflightCapDefersTheTurnWithoutConsumingIt) {
  service::FairQueueOptions options;
  options.per_tenant_inflight = 1;
  IntFairQueue queue(options);
  queue.TryPush("a", 1);
  queue.TryPush("a", 2);
  queue.TryPush("b", 10);
  int out = 0;
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 1);  // a's turn
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 10);  // a capped -> deferred, b serves
  queue.OnDone("a");
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 2);  // a's slot freed
}

TEST(FairQueueTest, DrainHandsOutExpiredItemsFirst) {
  service::FairQueueOptions options;
  IntFairQueue queue(options);
  queue.SetExpiryProbe([](const int& v) { return v < 0; });
  queue.TryPush("a", 1);
  queue.TryPush("a", -2);
  queue.TryPush("b", 3);
  queue.Close();
  int out = 0;
  bool expired = false;
  ASSERT_TRUE(queue.Pop(out, &expired));
  EXPECT_EQ(out, -2);  // jumped its FIFO position
  EXPECT_TRUE(expired);
  queue.OnDone("a");
  std::vector<int> rest;
  while (queue.Pop(out, &expired)) {
    EXPECT_FALSE(expired);
    rest.push_back(out);
  }
  std::sort(rest.begin(), rest.end());
  EXPECT_EQ(rest, (std::vector<int>{1, 3}));
}

TEST(BoundedQueueTest, DrainHandsOutExpiredItemsFirst) {
  BoundedQueue<int> queue(8);
  queue.SetExpiryProbe([](const int& v) { return v < 0; });
  queue.TryPush(1);
  queue.TryPush(2);
  queue.TryPush(-3);
  queue.TryPush(4);
  queue.Close();
  int out = 0;
  bool expired = false;
  ASSERT_TRUE(queue.Pop(out, &expired));
  EXPECT_EQ(out, -3);
  EXPECT_TRUE(expired);
  for (const int expect : {1, 2, 4}) {
    ASSERT_TRUE(queue.Pop(out, &expired));
    EXPECT_EQ(out, expect);
    EXPECT_FALSE(expired);
  }
  EXPECT_FALSE(queue.Pop(out, &expired));
}

// ------------------------------------------------------- client backoff --

/// A deliberately unreliable unix-socket daemon: greets, records the
/// request line, then drops the first `failures` connections without
/// answering. Connection `failures + 1` responds properly.
class FlakyServer {
 public:
  explicit FlakyServer(std::string path, std::size_t failures)
      : listener_(path), failures_(failures), thread_([this] { Run(); }) {}

  ~FlakyServer() {
    listener_.Close();
    thread_.join();
  }

  std::vector<std::string> Lines() {
    MutexLock lock(mu_);
    return lines_;
  }

 private:
  void Run() {
    for (;;) {
      std::optional<UnixSocket> sock = listener_.Accept();
      if (!sock.has_value()) return;
      (void)sock->SendAll("{\"greeting\":1}\n");
      SocketLineReader reader(*sock);
      std::string line;
      if (!reader.ReadLine(line)) continue;
      std::size_t served;
      {
        MutexLock lock(mu_);
        lines_.push_back(line);
        served = lines_.size();
      }
      if (served <= failures_) continue;  // hang up without answering
      const std::string id = JsonValue::Parse(line).GetString("id", "");
      (void)sock->SendAll("{\"id\":\"" + id + "\",\"ok\":true}\n");
    }
  }

  UnixListener listener_;
  const std::size_t failures_;
  Mutex mu_;
  std::vector<std::string> lines_ RESCHED_GUARDED_BY(mu_);
  std::thread thread_;
};

TEST(ClientBackoffTest, SleepsFollowTheCappedExponentialSequence) {
  const std::string path =
      "/tmp/resched_flaky_" + std::to_string(::getpid()) + "a.sock";
  FlakyServer server(path, 1000);  // never answers

  std::vector<double> sleeps;
  service::ClientOptions options;
  options.max_attempts = 5;
  options.backoff_initial_ms = 20.0;
  options.backoff_max_ms = 100.0;
  options.backoff_multiplier = 2.0;
  options.sleep_fn = [&sleeps](double ms) { sleeps.push_back(ms); };
  service::RescheddClient client(path, options);
  EXPECT_THROW((void)client.Submit(R"({"verb":"stats","id":"b1"})"),
               SocketError);
  // 4 retries after the first attempt: 20, 40, 80, then the 160 clamps.
  EXPECT_EQ(sleeps, (std::vector<double>{20.0, 40.0, 80.0, 100.0}));
}

TEST(ClientBackoffTest, ResubmittedLinesAreByteIdentical) {
  const std::string path =
      "/tmp/resched_flaky_" + std::to_string(::getpid()) + "b.sock";
  FlakyServer server(path, 2);  // two drops, then serve

  std::vector<double> sleeps;
  service::ClientOptions options;
  options.sleep_fn = [&sleeps](double ms) { sleeps.push_back(ms); };
  service::RescheddClient client(path, options);
  const std::string line = R"({"verb":"stats","id":"rq-9"})";
  const service::RescheddClient::Result result = client.Submit(line);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_EQ(result.reconnects, 2u);
  EXPECT_EQ(JsonValue::Parse(result.response).GetString("id", ""), "rq-9");

  // The retry path must resubmit the *same bytes* — that is what makes
  // the server-side dedup ledger able to recognize the resend.
  const std::vector<std::string> lines = server.Lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], line);
  EXPECT_EQ(lines[1], line);
  EXPECT_EQ(lines[2], line);
  EXPECT_EQ(sleeps, (std::vector<double>{20.0, 40.0}));
}

// -------------------------------------------------------------- framing --

/// A connected StreamSocket pair over socketpair(2).
struct SocketPair {
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = StreamSocket(fds[0]);
    b = StreamSocket(fds[1]);
  }
  StreamSocket a, b;
};

TEST(FramingTest, HeaderLayoutIsMagicVersionLengthLe) {
  const std::string header = service::FrameHeader(0x01020304);
  ASSERT_EQ(header.size(), service::kFrameHeaderBytes);
  EXPECT_EQ(header[0], 'R');
  EXPECT_EQ(header[1], 'S');
  EXPECT_EQ(header[2], 'F');
  EXPECT_EQ(header[3], 1);
  EXPECT_EQ(static_cast<unsigned char>(header[4]), 0x04);  // little-endian
  EXPECT_EQ(static_cast<unsigned char>(header[5]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(header[6]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(header[7]), 0x01);
}

TEST(FramingTest, RoundTripsFramesAndReportsEofAtBoundary) {
  SocketPair pair;
  ASSERT_TRUE(service::WriteFrame(pair.a, "hello"));
  ASSERT_TRUE(service::WriteFrame(pair.a, ""));
  ASSERT_TRUE(service::WriteFrame(pair.a, std::string(100000, 'x')));
  pair.a.Close();

  service::FrameReader reader(pair.b);
  std::string payload;
  ASSERT_EQ(reader.Read(payload), service::FrameResult::kFrame);
  EXPECT_EQ(payload, "hello");
  ASSERT_EQ(reader.Read(payload), service::FrameResult::kFrame);
  EXPECT_EQ(payload, "");
  ASSERT_EQ(reader.Read(payload), service::FrameResult::kFrame);
  EXPECT_EQ(payload, std::string(100000, 'x'));
  EXPECT_EQ(reader.Read(payload), service::FrameResult::kEof);
}

TEST(FramingTest, RejectsBadMagicVersionTornAndOversizedFrames) {
  {
    SocketPair pair;
    ASSERT_TRUE(pair.a.SendAll(std::string("XSF\x01\x01\x00\x00\x00z", 9)));
    service::FrameReader reader(pair.b);
    std::string payload;
    EXPECT_EQ(reader.Read(payload), service::FrameResult::kBadMagic);
  }
  {
    SocketPair pair;
    ASSERT_TRUE(pair.a.SendAll(std::string("RSF\x02\x01\x00\x00\x00z", 9)));
    service::FrameReader reader(pair.b);
    std::string payload;
    EXPECT_EQ(reader.Read(payload), service::FrameResult::kBadVersion);
  }
  {
    SocketPair pair;
    // Header promises 10 bytes; only 3 arrive before EOF.
    ASSERT_TRUE(pair.a.SendAll(std::string("RSF\x01\x0a\x00\x00\x00", 8)));
    ASSERT_TRUE(pair.a.SendAll("abc"));
    pair.a.Close();
    service::FrameReader reader(pair.b);
    std::string payload;
    EXPECT_EQ(reader.Read(payload), service::FrameResult::kTorn);
  }
  {
    SocketPair pair;
    ASSERT_TRUE(service::WriteFrame(pair.a, std::string(64, 'y')));
    service::FrameReader reader(pair.b, /*max_frame_bytes=*/16);
    std::string payload;
    // The limit check happens on the *header*, before any allocation.
    EXPECT_EQ(reader.Read(payload), service::FrameResult::kTooLarge);
  }
}

// ------------------------------------------------------------- tcp e2e --

TEST(TcpTransportTest, EndToEndOverTcpWithFramedClient) {
  service::TcpServerTransport transport("127.0.0.1", 0);
  ASSERT_GT(transport.Port(), 0);
  ServerOptions options;
  options.workers = 1;
  RescheddServer server(transport, options);
  std::thread serve([&server] { server.Serve(); });

  // A garbage (unframed) connection must be dropped without poisoning the
  // daemon for the next, well-framed client.
  {
    StreamSocket raw = StreamSocket::ConnectTcp("127.0.0.1",
                                                transport.Port());
    ASSERT_TRUE(raw.SendAll("garbage!"));  // 8 bytes = one bad header
    raw.Close();
  }

  service::RescheddClient client(
      service::ClientEndpoint::Tcp("127.0.0.1", transport.Port()));
  const Instance instance = ServiceInstance();
  const service::RescheddClient::Result result = client.Submit(
      MakeRequest("schedule", instance, {{"id", "tcp1"}}));
  EXPECT_TRUE(JsonValue::Parse(result.response).GetBool("ok", false))
      << result.response;
  EXPECT_EQ(JsonValue::Parse(result.handshake).GetInt("protocol", -1),
            service::kProtocolVersion);

  const service::RescheddClient::Result bye =
      client.Submit(R"({"verb":"shutdown","id":"tcp2"})");
  EXPECT_EQ(JsonValue::Parse(bye.response).GetString("verb", ""), "shutdown");
  serve.join();
  EXPECT_GE(transport.FramingErrors(), 1u);
}

// -------------------------------------------------------------- metrics --

TEST(MetricsExportTest, RendersFamiliesWithEscapedLabels) {
  std::vector<service::MetricFamily> families;
  service::MetricFamily counter{
      "svc_requests_total", "Requests by tenant.", "counter", {}};
  service::MetricSample sample;
  sample.labels["tenant"] = "we\"ird\\name\n";
  sample.value = 3;
  counter.samples.push_back(sample);
  families.push_back(counter);

  const std::string text = service::RenderPrometheus(families);
  EXPECT_EQ(text,
            "# HELP svc_requests_total Requests by tenant.\n"
            "# TYPE svc_requests_total counter\n"
            "svc_requests_total{tenant=\"we\\\"ird\\\\name\\n\"} 3\n");
}

TEST(MetricsExportTest, HistogramRendersCumulativeBucketsSumAndCount) {
  service::LatencyHistogram histogram;
  histogram.Record(0.3);
  histogram.Record(3.0);
  histogram.Record(100000.0);  // lands in +Inf

  std::vector<service::MetricFamily> families;
  service::AppendHistogramFamily(families, "svc_wait_ms", "Queue wait.",
                                 {{"tenant", "a"}}, histogram.Take());
  const std::string text = service::RenderPrometheus(families);
  EXPECT_NE(text.find("svc_wait_ms_bucket{le=\"0.5\",tenant=\"a\"} 1\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("svc_wait_ms_bucket{le=\"4\",tenant=\"a\"} 2\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("svc_wait_ms_bucket{le=\"+Inf\",tenant=\"a\"} 3\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("svc_wait_ms_count{tenant=\"a\"} 3\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("svc_wait_ms_sum{tenant=\"a\"} "), std::string::npos)
      << text;

  // Interpolated quantiles stay inside the populated buckets.
  const double p50 = service::HistogramQuantileMs(histogram.Take(), 0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 4.0);
}

TEST(MetricsExportTest, TextfileReplacementIsAtomicAndReportsErrors) {
  const std::string path =
      "/tmp/resched_metrics_" + std::to_string(::getpid()) + ".prom";
  std::string error;
  ASSERT_TRUE(service::WriteTextfileAtomic(path, "metric_a 1\n", &error))
      << error;
  ASSERT_TRUE(service::WriteTextfileAtomic(path, "metric_a 2\n", &error))
      << error;
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "metric_a 2\n");
  (void)::unlink(path.c_str());

  EXPECT_FALSE(service::WriteTextfileAtomic(
      "/nonexistent-dir/metrics.prom", "x 1\n", &error));
  EXPECT_FALSE(error.empty());
}

TEST(RescheddServerTest, StatsReportPerTenantCountersAndMetricsWriter) {
  const std::string metrics_path =
      "/tmp/resched_srv_metrics_" + std::to_string(::getpid()) + ".prom";
  ServerOptions options;
  options.workers = 1;
  options.tenant_weights["gold"] = 4;
  options.metrics_out_path = metrics_path;
  options.metrics_interval_ms = 50.0;
  {
    PipeServer server(options);
    const Instance instance = ServiceInstance();
    for (int i = 0; i < 3; ++i) {
      const std::string response = server.SubmitAndWait(MakeRequest(
          "schedule", instance,
          {{"id", "g" + std::to_string(i)}, {"tenant", "gold"}}));
      ASSERT_TRUE(JsonValue::Parse(response).GetBool("ok", false));
    }
    const std::string stats =
        server.SubmitAndWait(R"({"verb":"stats","id":"s"})");
    const JsonValue doc = JsonValue::Parse(stats);
    ASSERT_TRUE(doc.Contains("tenants")) << stats;
    const JsonValue& gold = doc.At("tenants").At("gold");
    EXPECT_EQ(gold.GetInt("admitted", -1), 3);
    // First run executes, repeats hit the result cache.
    EXPECT_EQ(gold.GetInt("exec", -1), 1);
    EXPECT_EQ(gold.GetInt("cache_hits", -1), 2);
    ASSERT_TRUE(doc.Contains("metrics")) << stats;
    EXPECT_EQ(doc.At("metrics").GetString("path", ""), metrics_path);
  }
  // Serve() writes a final snapshot on the way out.
  std::ifstream in(metrics_path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("# TYPE reschedd_tenant_requests_total counter"),
            std::string::npos);
  EXPECT_NE(
      content.find(
          "reschedd_tenant_requests_total{outcome=\"admitted\","
          "tenant=\"gold\"} 3"),
      std::string::npos)
      << content;
  (void)::unlink(metrics_path.c_str());
}

}  // namespace
}  // namespace resched
