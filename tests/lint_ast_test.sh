#!/usr/bin/env bash
# Self-test for the libclang AST rules in tools/resched_lint_ast.py,
# run by ctest:
#  1. when libclang is unavailable, --ast must skip with a notice (exit
#     0) and --ast-required must fail (exit 2) — then this test SKIPs
#     (exit 77) because the rules themselves cannot run;
#  2. when libclang is available, the real repo must be AST-clean, every
#     rule must fire on its seeded violation, and every inline allow()
#     must silence exactly its finding.
# Usage: lint_ast_test.sh <python3> <resched_lint.py> <repo-root>
set -euo pipefail

PYTHON=$1
LINT=$2
ROOT=$3

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- availability probe ------------------------------------------------------
probe_out=$("$PYTHON" "$LINT" --root "$ROOT" --ast 2>&1) || probe_rc=$?
probe_rc=${probe_rc:-0}
if echo "$probe_out" | grep -q "AST rules skipped"; then
  [ "$probe_rc" -eq 0 ] || fail "skip path must exit 0 (got $probe_rc)"
  required_rc=0
  "$PYTHON" "$LINT" --root "$ROOT" --ast --ast-required >/dev/null 2>&1 \
      || required_rc=$?
  [ "$required_rc" -eq 2 ] \
      || fail "--ast-required must exit 2 when libclang is unavailable" \
              "(got $required_rc)"
  echo "lint_ast_test SKIP (libclang unavailable)"
  exit 77
fi
# libclang is available: the probe above already proved the repo itself
# is AST-clean (it would have exited 1 on findings).
[ "$probe_rc" -eq 0 ] || fail "repo is not AST-clean: $probe_out"
echo "$probe_out" | grep -q "AST rules ran over" \
    || fail "AST pass did not report running"

# --- seeded violations -------------------------------------------------------
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
mkdir -p "$TMP/src"

# arena-escape: caching arena-backed storage without owning/binding the
# arena, and returning a pointer into an arena from a non-owning scope.
cat > "$TMP/src/arena_escape.cpp" <<'EOF'
namespace resched {
class MonotonicArena {
 public:
  void* Allocate(unsigned long bytes, unsigned long align);
};
template <class T>
class ArenaVec {
 public:
  T* data();
};
}  // namespace resched

struct CachedRows {  // does not own (or bind) the arena
  resched::ArenaVec<int>* rows;
};

struct SuppressedRows {
  resched::ArenaVec<int>* rows;  // resched-lint: allow(arena-escape)
};

struct OwningRows {  // owns the arena: sanctioned
  resched::MonotonicArena arena;
  resched::ArenaVec<int>* rows;
};

struct BoundRows {  // binds the arena by constructor contract: sanctioned
  explicit BoundRows(resched::MonotonicArena& arena);
  resched::ArenaVec<int> rows;
};

struct ViewRows {  // reference field: a constructor-bound borrow
  resched::ArenaVec<int>& rows;
};

int* LeakInt(resched::MonotonicArena& a) {
  return static_cast<int*>(a.Allocate(4, 4));
}

int* LeakIntAllowed(resched::MonotonicArena& a) {
  return static_cast<int*>(a.Allocate(4, 4));  // resched-lint: allow(arena-escape)
}
EOF

# cancel-poll-coverage: unbounded loops in cancel-aware code.
cat > "$TMP/src/cancel_poll.cpp" <<'EOF'
struct CancelToken {
  bool Cancelled() const;
  void ThrowIfCancelled() const;
};
int Step();

int DrainUnbounded(const CancelToken& token, bool more) {
  int n = 0;
  while (more) {  // never polls: finding
    n += Step();
  }
  for (;;) {  // never polls: finding
    if (n > 3) break;
    n += Step();
  }
  while (more) {  // polls: clean
    token.ThrowIfCancelled();
    n += Step();
  }
  while (more) {  // resched-lint: allow(cancel-poll-coverage)
    n += Step();
  }
  for (int i = 0; i < 4; ++i) n += Step();  // counted: exempt
  for (;;) {  // enclosing poll covers the inner loop
    if (token.Cancelled()) break;
    while (more) n += Step();
  }
  return n;
}

int NotCancelAware(bool more) {  // out of scope entirely
  int n = 0;
  while (more) n += Step();
  return n;
}
EOF

# lock-held-over-blocking-call: a lock scope covering socket I/O.
cat > "$TMP/src/lock_blocking.cpp" <<'EOF'
namespace resched {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};
}  // namespace resched

struct Socket {
  bool SendAll(const char* bytes);
};

struct Writer {
  resched::Mutex mu;
  Socket sock;

  bool Flush(const char* b) {
    resched::MutexLock lock(mu);
    return sock.SendAll(b);  // under the lock: finding
  }
  bool FlushAllowed(const char* b) {
    resched::MutexLock lock(mu);
    return sock.SendAll(b);  // resched-lint: allow(lock-held-over-blocking-call)
  }
  bool FlushOutside(const char* b) {
    {
      resched::MutexLock lock(mu);
    }
    return sock.SendAll(b);  // lock already released: clean
  }
  void Defer(const char* b) {
    resched::MutexLock lock(mu);
    auto later = [this, b] { (void)sock.SendAll(b); };  // deferred: clean
    (void)later;
  }
};
EOF

# unannotated-mutex: raw standard-library synchronization members.
cat > "$TMP/src/unannotated_mutex.cpp" <<'EOF'
#include <condition_variable>
#include <mutex>

struct Queue {
  std::mutex mu;               // finding
  std::condition_variable cv;  // finding
};

struct Allowed {
  std::mutex mu;  // resched-lint: allow(unannotated-mutex)
};
EOF

out=$("$PYTHON" "$LINT" --root "$TMP" --ast --ast-required 2>&1) \
    && fail "seeded AST violations not detected"

expect_count() {  # rule, expected finding count
  local got
  got=$(echo "$out" | grep -c "\[$1\]" || true)
  [ "$got" -eq "$2" ] || fail "rule $1: expected $2 finding(s), got $got
$out"
}
echo "$out" | grep -q "ast-parse-error" && fail "corpus failed to parse:
$out"
expect_count arena-escape 2            # CachedRows field + LeakInt return
expect_count cancel-poll-coverage 2    # the two unpolled loops
expect_count lock-held-over-blocking-call 1  # Flush only
expect_count unannotated-mutex 2       # mu + cv in Queue

# The allow() lines must be silent: no finding may point at a line that
# carries a suppression for its own rule.
for f in arena_escape cancel_poll lock_blocking unannotated_mutex; do
  while IFS=: read -r _ lineno rest; do
    line=$(sed -n "${lineno}p" "$TMP/src/$f.cpp")
    echo "$line" | grep -q "resched-lint: allow" \
        && fail "suppressed line still reported: src/$f.cpp:$lineno"
  done < <(echo "$out" | grep "^src/$f.cpp:" || true)
done

echo "lint_ast_test OK"
