// Tests for the PA deterministic scheduler: per-phase behaviour, the
// Figure-1 motivating property, option ablations, and parameterized
// end-to-end validity sweeps over generated instances.
#include <gtest/gtest.h>

#include "baseline/reference.hpp"
#include "core/pa_scheduler.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::MakeSmallPlatform;
using testing::SwImpl;

Instance MakeFigure1Instance() {
  const ResourceModel model = MakeClbBramDspModel();
  FabricGeometry geom = BuildInterleavedFabric(
      model, ResourceVec({1000, 10, 20}), {50, 5, 10}, 2);
  FpgaDevice device("fig1", model, std::move(geom));
  Platform platform("fig1", 1, std::move(device), 1.024e9);

  TaskGraph g;
  const TaskId t1 = g.AddTask("t1");
  const TaskId t2 = g.AddTask("t2");
  const TaskId t3 = g.AddTask("t3");
  g.AddEdge(t1, t2);
  g.AddEdge(t1, t3);
  g.AddImpl(t1, SwImpl(50000));
  g.AddImpl(t1, HwImpl(2000, 800, 0, 0, -1, "t1_1"));  // fast, large
  g.AddImpl(t1, HwImpl(4000, 300, 0, 0, -1, "t1_2"));  // slow, small
  g.AddImpl(t2, SwImpl(50000));
  g.AddImpl(t2, HwImpl(5000, 350));
  g.AddImpl(t3, SwImpl(50000));
  g.AddImpl(t3, HwImpl(5000, 330));
  return Instance{"figure1", std::move(platform), std::move(g)};
}

// ---------------------------------------------------------------- figure 1

TEST(PaSchedulerTest, Figure1PicksResourceEfficientImplementation) {
  const Instance inst = MakeFigure1Instance();
  const Schedule s = SchedulePa(inst);
  ASSERT_TRUE(ValidateSchedule(inst, s).ok());

  // t1 must use the slow/small implementation (index 2, "t1_2").
  EXPECT_EQ(s.task_slots[0].impl_index, 2u);
  // All three tasks in hardware, in three separate regions, no
  // reconfigurations: t2 and t3 run in parallel.
  EXPECT_EQ(s.NumHardwareTasks(), 3u);
  EXPECT_EQ(s.regions.size(), 3u);
  EXPECT_TRUE(s.reconfigurations.empty());
  // t2 and t3 overlap in time.
  const TaskSlot& t2 = s.task_slots[1];
  const TaskSlot& t3 = s.task_slots[2];
  EXPECT_LT(std::max(t2.start, t3.start), std::min(t2.end, t3.end));
  // Makespan: 4000 (t1_2) + 5000 (parallel t2/t3) = 9000.
  EXPECT_EQ(s.makespan, 9000);
}

// ---------------------------------------------------------------- basics

TEST(PaSchedulerTest, SingleTaskGoesHardwareWhenFaster) {
  TaskGraph g;
  const TaskId t = g.AddTask("t");
  g.AddImpl(t, SwImpl(1000));
  g.AddImpl(t, HwImpl(100, 200));
  Instance inst{"single", MakeSmallPlatform(), std::move(g)};
  const Schedule s = SchedulePa(inst);
  ASSERT_TRUE(ValidateSchedule(inst, s).ok());
  EXPECT_EQ(s.NumHardwareTasks(), 1u);
  EXPECT_EQ(s.makespan, 100);
  EXPECT_EQ(s.regions.size(), 1u);
}

TEST(PaSchedulerTest, SoftwareOnlyTaskStaysOnCore) {
  TaskGraph g;
  const TaskId t = g.AddTask("t");
  g.AddImpl(t, SwImpl(700));
  Instance inst{"swonly", MakeSmallPlatform(), std::move(g)};
  const Schedule s = SchedulePa(inst);
  ASSERT_TRUE(ValidateSchedule(inst, s).ok());
  EXPECT_EQ(s.NumHardwareTasks(), 0u);
  EXPECT_EQ(s.makespan, 700);
  EXPECT_TRUE(s.regions.empty());
}

TEST(PaSchedulerTest, PrefersHardwareOnTies) {
  TaskGraph g;
  const TaskId t = g.AddTask("t");
  g.AddImpl(t, SwImpl(100));
  g.AddImpl(t, HwImpl(100, 200));
  Instance inst{"tie", MakeSmallPlatform(), std::move(g)};
  const Schedule s = SchedulePa(inst);
  EXPECT_EQ(s.NumHardwareTasks(), 1u);
}

TEST(PaSchedulerTest, ChainSharesRegionWithReconfigurations) {
  // Chain of equal 500-CLB tasks on a small device: capacity allows only a
  // few regions, so later tasks must reuse earlier regions with
  // reconfigurations in between (or fall back to software).
  TaskGraph g = testing::MakeChain(8, /*hw_time=*/4000, /*clb=*/1500,
                                   /*sw_time=*/40000);
  Instance inst{"chain", MakeSmallPlatform(), std::move(g)};
  const Schedule s = SchedulePa(inst);
  ASSERT_TRUE(ValidateSchedule(inst, s).ok()) << ValidateSchedule(inst, s)
                                                     .Summary();
  // The device fits at most 2 such regions (3200/1500); with 8 chain tasks
  // at least one region hosts multiple tasks.
  bool some_region_multi = false;
  for (const RegionInfo& r : s.regions) {
    if (r.tasks.size() > 1) some_region_multi = true;
  }
  EXPECT_TRUE(some_region_multi);
  EXPECT_FALSE(s.reconfigurations.empty());
}

TEST(PaSchedulerTest, DeterministicAcrossRuns) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 31, "det");
  const Schedule a = SchedulePa(inst);
  const Schedule b = SchedulePa(inst);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.task_slots.size(), b.task_slots.size());
  for (std::size_t t = 0; t < a.task_slots.size(); ++t) {
    EXPECT_EQ(a.task_slots[t].start, b.task_slots[t].start);
    EXPECT_EQ(a.task_slots[t].impl_index, b.task_slots[t].impl_index);
    EXPECT_EQ(a.task_slots[t].target_index, b.task_slots[t].target_index);
  }
}

TEST(PaSchedulerTest, MakespanRespectsCriticalPathLowerBound) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Instance inst =
        GenerateInstance(MakeZedBoard(), GeneratorOptions{}, seed, "lb");
    const Schedule s = SchedulePa(inst);
    EXPECT_GE(s.makespan, CriticalPathLowerBound(inst));
  }
}

TEST(PaSchedulerTest, FloorplanAttachedAndValid) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 5, "fp");
  const Schedule s = SchedulePa(inst);
  EXPECT_TRUE(s.floorplan_checked);
  ValidationOptions opt;
  opt.require_floorplan = true;
  EXPECT_TRUE(ValidateSchedule(inst, s, opt).ok());
}

TEST(PaSchedulerTest, NoFloorplanOptionSkipsCheck) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 5, "nofp");
  PaOptions opt;
  opt.run_floorplan = false;
  const Schedule s = SchedulePa(inst, opt);
  EXPECT_FALSE(s.floorplan_checked);
  EXPECT_TRUE(s.floorplan.empty());
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
}

TEST(PaSchedulerTest, TimingMetadataPopulated) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 5, "meta");
  const Schedule s = SchedulePa(inst);
  EXPECT_EQ(s.algorithm, "PA");
  EXPECT_GT(s.scheduling_seconds, 0.0);
  EXPECT_GT(s.floorplanning_seconds, 0.0);
}

// ---------------------------------------------------------------- ablations

TEST(PaSchedulerTest, AllOrderingsProduceValidSchedules) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 13, "ord");
  for (const NonCriticalOrder ord :
       {NonCriticalOrder::kEfficiency, NonCriticalOrder::kRandom,
        NonCriticalOrder::kFastestFirst, NonCriticalOrder::kGraphOrder}) {
    PaOptions opt;
    opt.ordering = ord;
    opt.seed = 99;
    const Schedule s = SchedulePa(inst, opt);
    EXPECT_TRUE(ValidateSchedule(inst, s).ok())
        << "ordering " << static_cast<int>(ord) << ": "
        << ValidateSchedule(inst, s).Summary();
  }
}

TEST(PaSchedulerTest, SwBalancingOffStillValid) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 29, "bal");
  PaOptions opt;
  opt.sw_balancing = false;
  const Schedule s = SchedulePa(inst, opt);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
}

TEST(PaSchedulerTest, ModuleReuseSkipsReconfigurations) {
  // Chain of 6 tasks all sharing the same module: with reuse, a region can
  // run them back-to-back with zero reconfigurations.
  TaskGraph g;
  for (std::size_t i = 0; i < 6; ++i) {
    const TaskId t = g.AddTask("m" + std::to_string(i));
    g.AddImpl(t, SwImpl(50000));
    g.AddImpl(t, HwImpl(2000, 2500, 0, 0, /*module=*/7));
    if (i > 0) g.AddEdge(static_cast<TaskId>(i - 1), t);
  }
  Instance inst{"reuse", MakeSmallPlatform(), std::move(g)};

  PaOptions with_reuse;
  with_reuse.module_reuse = true;
  const Schedule a = SchedulePa(inst, with_reuse);
  ValidationOptions vopt;
  vopt.allow_module_reuse = true;
  ASSERT_TRUE(ValidateSchedule(inst, a, vopt).ok())
      << ValidateSchedule(inst, a, vopt).Summary();

  PaOptions without_reuse;
  without_reuse.module_reuse = false;
  const Schedule b = SchedulePa(inst, without_reuse);
  ASSERT_TRUE(ValidateSchedule(inst, b).ok());

  EXPECT_LT(a.reconfigurations.size(), b.reconfigurations.size());
  EXPECT_LE(a.makespan, b.makespan);
}

TEST(PaSchedulerTest, ModuleAwareRegionSelectionAvoidsReconfigs) {
  // Chain t0(m0) -> t1(m1) -> t2(m1), both modules 500 CLB, capacity for
  // exactly two regions. Region A hosts t0, region B hosts t1. For t2 the
  // two candidate regions tie on bitstream; only the module-aware
  // preference routes it after its same-module sibling in region B, which
  // removes every reconfiguration.
  const ResourceModel model = MakeClbBramDspModel();
  FabricGeometry geom = BuildInterleavedFabric(
      model, ResourceVec({1000, 10, 20}), {50, 5, 10}, 2);
  FpgaDevice device("mr", model, std::move(geom));
  Platform platform("mr", 1, std::move(device), 2.56e8);

  TaskGraph g;
  const TaskId t0 = g.AddTask("t0");
  const TaskId t1 = g.AddTask("t1");
  const TaskId t2 = g.AddTask("t2");
  g.AddEdge(t0, t1);
  g.AddEdge(t1, t2);
  g.AddImpl(t0, SwImpl(90000));
  g.AddImpl(t0, HwImpl(10000, 500, 0, 0, /*module=*/0));
  g.AddImpl(t1, SwImpl(90000));
  g.AddImpl(t1, HwImpl(10000, 500, 0, 0, /*module=*/1));
  g.AddImpl(t2, SwImpl(90000));
  g.AddImpl(t2, HwImpl(10000, 500, 0, 0, /*module=*/1));
  Instance inst{"mr", std::move(platform), std::move(g)};

  PaOptions reuse;
  reuse.module_reuse = true;
  const Schedule s = SchedulePa(inst, reuse);
  ValidationOptions vopt;
  vopt.allow_module_reuse = true;
  ASSERT_TRUE(ValidateSchedule(inst, s, vopt).ok())
      << ValidateSchedule(inst, s, vopt).Summary();
  EXPECT_EQ(s.NumHardwareTasks(), 3u);
  EXPECT_TRUE(s.reconfigurations.empty());
  EXPECT_EQ(s.makespan, 30000);
  // t1 and t2 share a region.
  EXPECT_EQ(s.task_slots[1].target_index, s.task_slots[2].target_index);
}

TEST(PaSchedulerTest, ZeroShrinkRoundsForcesAllSoftware) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 3, "allsw");
  PaOptions opt;
  opt.max_shrink_rounds = 0;  // round 0 already runs with zero capacity
  const Schedule s = SchedulePa(inst, opt);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
  EXPECT_EQ(s.NumHardwareTasks(), 0u);
  EXPECT_TRUE(s.regions.empty());
}

// ---------------------------------------------------------------- sweeps

struct SweepParam {
  std::size_t num_tasks;
  std::uint64_t seed;
};

class PaValiditySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PaValiditySweep, ProducesValidSchedule) {
  const SweepParam p = GetParam();
  GeneratorOptions gen;
  gen.num_tasks = p.num_tasks;
  const Instance inst =
      GenerateInstance(MakeZedBoard(), gen, p.seed, "sweep");
  const Schedule s = SchedulePa(inst);
  const ValidationResult r = ValidateSchedule(inst, s);
  EXPECT_TRUE(r.ok()) << "n=" << p.num_tasks << " seed=" << p.seed << "\n"
                      << r.Summary();
  EXPECT_GE(s.makespan, CriticalPathLowerBound(inst));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PaValiditySweep,
    ::testing::Values(SweepParam{1, 4}, SweepParam{2, 8}, SweepParam{5, 1},
                      SweepParam{10, 2}, SweepParam{10, 3}, SweepParam{20, 4},
                      SweepParam{20, 5}, SweepParam{40, 6}, SweepParam{40, 7},
                      SweepParam{70, 8}, SweepParam{100, 9}),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      return "n" + std::to_string(param_info.param.num_tasks) + "_s" +
             std::to_string(param_info.param.seed);
    });

class PaSmallDeviceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaSmallDeviceSweep, HighContentionStillValid) {
  // A small device forces heavy region reuse and software fallbacks.
  GeneratorOptions gen;
  gen.num_tasks = 25;
  const Instance inst = GenerateInstance(testing::MakeSmallPlatform(),
                                         gen, GetParam(), "tight");
  const Schedule s = SchedulePa(inst);
  const ValidationResult r = ValidateSchedule(inst, s);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaSmallDeviceSweep,
                         ::testing::Range<std::uint64_t>(100, 112));

}  // namespace
}  // namespace resched
