// Tests for the fault-injection layer: deterministic scenario generation,
// JSON round-trips, the faulted discrete-event replay, and the recovery
// policies' survival + executed-schedule guarantees.
#include <gtest/gtest.h>

#include "core/pa_scheduler.hpp"
#include "io/fault_io.hpp"
#include "sched/validator.hpp"
#include "sim/executor.hpp"
#include "sim/faults.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultRates;
using sim::FaultScenario;
using sim::GenerateFaultScenario;
using sim::OutagesFromScenario;
using sim::SimOptions;
using sim::SimResult;
using sim::Simulate;
using sim::UniformFaultRates;

Instance MakeInstance(std::size_t n, std::uint64_t seed) {
  GeneratorOptions gen;
  gen.num_tasks = n;
  return GenerateInstance(MakeZedBoard(), gen, seed, "faults");
}

TEST(FaultScenarioTest, GenerationIsDeterministic) {
  const Instance inst = MakeInstance(30, 3);
  const Schedule s = SchedulePa(inst);
  const FaultRates rates = UniformFaultRates(0.3);
  const FaultScenario a = GenerateFaultScenario(s, rates, 42);
  const FaultScenario b = GenerateFaultScenario(s, rates, 42);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.Empty());
}

TEST(FaultScenarioTest, ZeroRatesYieldEmptyScenario) {
  const Instance inst = MakeInstance(20, 4);
  const Schedule s = SchedulePa(inst);
  const FaultScenario empty = GenerateFaultScenario(s, FaultRates{}, 7);
  EXPECT_TRUE(empty.Empty());
}

TEST(FaultScenarioTest, UniformRatesMapping) {
  const FaultRates r = UniformFaultRates(0.2);
  EXPECT_DOUBLE_EQ(r.reconf_failure_prob, 0.2);
  EXPECT_DOUBLE_EQ(r.transient_region_prob, 0.2);
  EXPECT_DOUBLE_EQ(r.permanent_region_prob, 0.05);
  EXPECT_DOUBLE_EQ(r.task_crash_prob, 0.1);
  EXPECT_DOUBLE_EQ(r.task_overrun_prob, 0.2);
}

TEST(FaultScenarioTest, JsonRoundTrip) {
  const Instance inst = MakeInstance(30, 5);
  const Schedule s = SchedulePa(inst);
  const FaultScenario scenario =
      GenerateFaultScenario(s, UniformFaultRates(0.4), 99);
  ASSERT_FALSE(scenario.Empty());
  const std::string text = FaultScenarioToString(scenario);
  const FaultScenario back = FaultScenarioFromString(text);
  EXPECT_EQ(scenario, back);
}

TEST(FaultScenarioTest, RejectsForeignDocuments) {
  EXPECT_THROW(FaultScenarioFromString("{\"format\": \"nope\"}"),
               InstanceError);
}

TEST(FaultedSimTest, EmptyScenarioMatchesNominalReplay) {
  // An explicitly-empty scenario must take the original relaxation path:
  // every field the nominal executor reports is identical.
  const Instance inst = MakeInstance(30, 6);
  const Schedule s = SchedulePa(inst);
  SimOptions jittered;
  jittered.task_jitter = 0.25;
  jittered.reconf_jitter = 0.25;
  jittered.seed = 17;
  const SimResult base = Simulate(inst, s, jittered);

  SimOptions with_empty = jittered;
  with_empty.faults = FaultScenario{};
  with_empty.recovery.policy = RecoveryPolicy::kSuffixReschedule;
  const SimResult same = Simulate(inst, s, with_empty);

  EXPECT_EQ(base.makespan, same.makespan);
  EXPECT_EQ(base.task_start, same.task_start);
  EXPECT_EQ(base.task_end, same.task_end);
  EXPECT_DOUBLE_EQ(base.stretch, same.stretch);
  EXPECT_EQ(same.recovery.reconf_retries, 0u);
  EXPECT_EQ(same.recovery.task_restarts, 0u);
  EXPECT_EQ(same.recovery.migrations, 0u);
  EXPECT_EQ(same.recovery.rescheduled_tasks, 0u);
  EXPECT_TRUE(same.recovery.survived);
}

TEST(FaultedSimTest, SurvivesAndValidatesUnderAllPolicies) {
  // Nonzero fault rates: the run must finish every task and the
  // as-executed schedule must pass the independent validator with the
  // scenario's outage windows.
  for (const RecoveryPolicy policy :
       {RecoveryPolicy::kRetry, RecoveryPolicy::kSoftwareFallback,
        RecoveryPolicy::kSuffixReschedule}) {
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
      const Instance inst = MakeInstance(30, seed);
      const Schedule s = SchedulePa(inst);
      SimOptions opt;
      opt.task_jitter = 0.2;
      opt.reconf_jitter = 0.2;
      opt.seed = DeriveSeed(kJitterSeedStream, seed);
      opt.faults = GenerateFaultScenario(s, UniformFaultRates(0.3),
                                         DeriveSeed(kFaultSeedStream, seed));
      opt.recovery.policy = policy;
      const SimResult r = Simulate(inst, s, opt);
      EXPECT_TRUE(r.recovery.survived);
      EXPECT_GT(r.makespan, 0);
      ValidationOptions vopt;
      vopt.executed = true;
      vopt.outages = OutagesFromScenario(opt.faults);
      const ValidationResult v = ValidateSchedule(inst, r.executed, vopt);
      EXPECT_TRUE(v.ok()) << "policy " << ToString(policy) << " seed "
                          << seed << "\n" << v.Summary();
    }
  }
}

TEST(FaultedSimTest, FaultedReplayIsDeterministic) {
  const Instance inst = MakeInstance(30, 8);
  const Schedule s = SchedulePa(inst);
  SimOptions opt;
  opt.task_jitter = 0.25;
  opt.reconf_jitter = 0.25;
  opt.seed = 23;
  opt.faults = GenerateFaultScenario(s, UniformFaultRates(0.3), 31);
  opt.recovery.policy = RecoveryPolicy::kSuffixReschedule;
  const SimResult a = Simulate(inst, s, opt);
  const SimResult b = Simulate(inst, s, opt);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.task_start, b.task_start);
  EXPECT_EQ(a.task_end, b.task_end);
  EXPECT_EQ(a.recovery.reconf_retries, b.recovery.reconf_retries);
  EXPECT_EQ(a.recovery.task_restarts, b.recovery.task_restarts);
  EXPECT_EQ(a.recovery.migrations, b.recovery.migrations);
  EXPECT_EQ(a.recovery.rescheduled_tasks, b.recovery.rescheduled_tasks);
}

TEST(FaultedSimTest, ReconfFailureCountsRetries) {
  // Find a schedule with at least one reconfiguration and fail its first
  // one twice: the telemetry must record exactly those two retries.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Instance inst = MakeInstance(30, seed);
    const Schedule s = SchedulePa(inst);
    if (s.reconfigurations.empty()) continue;
    FaultEvent event;
    event.kind = FaultKind::kReconfFailure;
    event.index = 0;
    event.count = 2;
    SimOptions opt;
    opt.faults.events.push_back(event);
    const SimResult r = Simulate(inst, s, opt);
    EXPECT_TRUE(r.recovery.survived);
    EXPECT_EQ(r.recovery.reconf_retries, 2u);
    EXPECT_EQ(r.recovery.abandoned_regions, 0u);
    return;
  }
  FAIL() << "no generated schedule used a reconfiguration";
}

TEST(FaultedSimTest, NoSoftwareImplementationTripsDeadlockGuard) {
  // A task whose only implementation is hardware loses its region for
  // good: no policy can recover, and the planner must say so loudly
  // rather than stall.
  // Hand-built schedule: the production schedulers refuse HW-only tasks
  // precisely because of this guarantee, so the scenario is constructed
  // directly.
  TaskGraph g;
  const TaskId t = g.AddTask("hw-only");
  g.AddImpl(t, testing::HwImpl(1000, 500));
  Instance inst{"hw-only", testing::MakeSmallPlatform(), std::move(g)};
  Schedule s;
  TaskSlot slot;
  slot.task = t;
  slot.impl_index = 0;
  slot.target = TargetKind::kRegion;
  slot.target_index = 0;
  slot.start = 0;
  slot.end = 1000;
  s.task_slots.push_back(slot);
  RegionInfo region;
  region.res = inst.graph.GetImpl(t, 0).res;
  region.reconf_time = 100;
  region.tasks.push_back(t);  // pre-loaded: no reconfiguration needed
  s.regions.push_back(region);
  s.makespan = 1000;
  FaultEvent loss;
  loss.kind = FaultKind::kPermanentRegionLoss;
  loss.index = 0;
  loss.at = 0;
  for (const RecoveryPolicy policy :
       {RecoveryPolicy::kRetry, RecoveryPolicy::kSoftwareFallback,
        RecoveryPolicy::kSuffixReschedule}) {
    SimOptions opt;
    opt.faults.events.push_back(loss);
    opt.recovery.policy = policy;
    EXPECT_THROW(Simulate(inst, s, opt), InstanceError)
        << "policy " << ToString(policy);
  }
}

TEST(FaultedSimTest, ScenarioIndexOutOfRangeThrows) {
  const Instance inst = MakeInstance(10, 9);
  const Schedule s = SchedulePa(inst);
  FaultEvent bogus;
  bogus.kind = FaultKind::kTransientRegionFault;
  bogus.index = s.regions.size() + 10;
  bogus.at = 1;
  bogus.window = 5;
  SimOptions opt;
  opt.faults.events.push_back(bogus);
  EXPECT_THROW(Simulate(inst, s, opt), InstanceError);
}

}  // namespace
}  // namespace resched
