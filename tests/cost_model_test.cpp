// Tests for the paper's Eq. (3)-(5) cost metrics.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::HwImpl;

TEST(CostModelTest, WeightsPenalizeScarceKinds) {
  const ResourceVec max_res({13300, 140, 220});
  const auto w = ComputeResourceWeights(max_res);
  ASSERT_EQ(w.size(), 3u);
  // Eq. (4): weight = 1 - share.
  const double total = 13300.0 + 140.0 + 220.0;
  EXPECT_NEAR(w[0], 1.0 - 13300.0 / total, 1e-12);
  EXPECT_NEAR(w[1], 1.0 - 140.0 / total, 1e-12);
  EXPECT_NEAR(w[2], 1.0 - 220.0 / total, 1e-12);
  // Scarce kinds weigh more.
  EXPECT_GT(w[1], w[0]);
  EXPECT_GT(w[2], w[0]);
}

TEST(CostModelTest, WeightedResourcesIsLinear) {
  const std::vector<double> w{0.5, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(WeightedResources(ResourceVec({2, 3, 4}), w),
                   1.0 + 3.0 + 8.0);
  EXPECT_DOUBLE_EQ(WeightedResources(ResourceVec({0, 0, 0}), w), 0.0);
}

TEST(CostModelTest, CostMatchesEq3ByHand) {
  const ResourceVec max_res({1000, 100, 0});
  const auto w = ComputeResourceWeights(max_res);
  const Implementation impl = HwImpl(/*time=*/50, /*clb=*/100, /*bram=*/10);
  const TimeT max_t = 500;
  const double num = w[0] * 100 + w[1] * 10;
  const double den = w[0] * 1000 + w[1] * 100;
  const double expected = num / den + 50.0 / 500.0;
  EXPECT_NEAR(ImplementationCost(impl, max_res, w, max_t), expected, 1e-12);
}

TEST(CostModelTest, CostGrowsWithTimeAndResources) {
  const ResourceVec max_res({1000, 100, 100});
  const auto w = ComputeResourceWeights(max_res);
  const TimeT max_t = 1000;
  const double base =
      ImplementationCost(HwImpl(100, 100, 10, 0), max_res, w, max_t);
  EXPECT_GT(ImplementationCost(HwImpl(200, 100, 10, 0), max_res, w, max_t),
            base);
  EXPECT_GT(ImplementationCost(HwImpl(100, 200, 10, 0), max_res, w, max_t),
            base);
  EXPECT_GT(ImplementationCost(HwImpl(100, 100, 20, 0), max_res, w, max_t),
            base);
}

TEST(CostModelTest, ScarceResourceCostsMoreThanAbundant) {
  const ResourceVec max_res({10000, 100, 100});
  const auto w = ComputeResourceWeights(max_res);
  const TimeT max_t = 1000;
  // Same "share" of the respective resource: 10% of CLB vs 10% of BRAM.
  const double clb_cost =
      ImplementationCost(HwImpl(100, 1000, 0, 0), max_res, w, max_t);
  const double bram_cost =
      ImplementationCost(HwImpl(100, 0, 10, 0), max_res, w, max_t);
  EXPECT_GT(clb_cost, 0.0);
  EXPECT_GT(bram_cost, 0.0);
  // 1000 CLB at weight ~0.02 ≈ 20; 10 BRAM at weight ~0.99 ≈ 10.
  // The exact relation depends on Eq. (4); just pin both are comparable
  // and neither is ignored.
  EXPECT_LT(std::abs(std::log(clb_cost / bram_cost)), 3.0);
}

TEST(CostModelTest, EfficiencyIndexMatchesEq5) {
  const ResourceVec max_res({1000, 100, 0});
  const auto w = ComputeResourceWeights(max_res);
  const Implementation impl = HwImpl(/*time=*/300, /*clb=*/100, /*bram=*/5);
  const double denom = w[0] * 100 + w[1] * 5;
  EXPECT_NEAR(EfficiencyIndex(impl, w), 300.0 / denom, 1e-9);
}

TEST(CostModelTest, EfficiencyPrefersSlowSmallImpls) {
  const ResourceVec max_res({1000, 100, 100});
  const auto w = ComputeResourceWeights(max_res);
  // Slow-but-small has the higher efficiency index (the paper's notion of
  // resource-efficient implementation).
  const double small_slow = EfficiencyIndex(HwImpl(400, 100, 2, 0), w);
  const double big_fast = EfficiencyIndex(HwImpl(100, 400, 8, 0), w);
  EXPECT_GT(small_slow, big_fast);
}

TEST(CostModelTest, EfficiencyFiniteForZeroWeightedFootprint) {
  // A CLB-only impl on a single-kind device has weight 0 -> guarded.
  const ResourceModel model({{"CLB", 1.0}});
  const ResourceVec max_res({1000});
  const auto w = ComputeResourceWeights(max_res);
  Implementation impl;
  impl.kind = ImplKind::kHardware;
  impl.exec_time = 100;
  impl.res = ResourceVec({10});
  const double eff = EfficiencyIndex(impl, w);
  EXPECT_TRUE(std::isfinite(eff));
  EXPECT_GT(eff, 0.0);
}

TEST(CostModelTest, CostRejectsSoftwareImpl) {
  const ResourceVec max_res({1000, 100, 100});
  const auto w = ComputeResourceWeights(max_res);
  EXPECT_THROW(
      (void)ImplementationCost(testing::SwImpl(10), max_res, w, 100),
      InternalError);
  EXPECT_THROW((void)EfficiencyIndex(testing::SwImpl(10), w), InternalError);
}

}  // namespace
}  // namespace resched
