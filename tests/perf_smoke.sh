#!/usr/bin/env bash
# Perf smoke for the PA-R restart hot path, run by ctest in Release builds:
# executes bench/micro_restart with a small fixed iteration cap and fails
# when the reuse+cache restart rate at 8 threads regresses more than 30%
# below the committed floor (tests/perf_baseline.txt). micro_restart itself
# aborts on any cross-mode makespan mismatch, so this gate also re-proves
# bit-identity on every CI run.
#
# Usage: perf_smoke.sh <micro_restart-binary> <baseline-file> [config]
#   RESCHED_PERF_BASELINE  overrides the baseline file (per-machine floors)
#   RESCHED_PERF_SCALE     overrides the bench scale (default 0.34)
set -euo pipefail

BIN=$1
BASELINE=${RESCHED_PERF_BASELINE:-$2}
CONFIG=${3:-Release}

if [[ "$CONFIG" != "Release" ]]; then
  echo "perf_smoke: skipped ($CONFIG build — floors are for Release)"
  exit 77
fi
[[ -x "$BIN" ]] || { echo "perf_smoke: missing binary $BIN" >&2; exit 1; }
[[ -f "$BASELINE" ]] || { echo "perf_smoke: missing baseline $BASELINE" >&2; exit 1; }

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

RESCHED_BENCH_SCALE=${RESCHED_PERF_SCALE:-0.34} RESCHED_BENCH_OUT="$OUT" \
    "$BIN" > "$OUT/log.txt" || {
  echo "perf_smoke: micro_restart failed (makespan mismatch or no schedule):" >&2
  cat "$OUT/log.txt" >&2
  exit 1
}

python3 - "$OUT/micro_restart.csv" "$BASELINE" <<'EOF'
import csv
import sys

csv_path, baseline_path = sys.argv[1], sys.argv[2]

floors = {}
with open(baseline_path) as fh:
    for line in fh:
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        instance, rate = line.split()
        floors[instance] = float(rate)

measured = {}
with open(csv_path) as fh:
    for row in csv.DictReader(fh):
        if row["mode"] == "reuse+cache" and row["threads"] == "8":
            measured[row["instance"]] = float(row["restarts_per_sec"])

status = 0
for instance, floor in sorted(floors.items()):
    rate = measured.get(instance)
    if rate is None:
        print(f"perf_smoke: FAIL {instance}: no measurement in {csv_path}")
        status = 1
        continue
    threshold = 0.7 * floor  # 30% regression allowance below the floor
    verdict = "ok" if rate >= threshold else "FAIL"
    print(f"perf_smoke: {verdict} {instance}: {rate:.1f} restarts/s "
          f"(floor {floor:.0f}, threshold {threshold:.1f})")
    if rate < threshold:
        status = 1
sys.exit(status)
EOF

echo "perf_smoke OK"
