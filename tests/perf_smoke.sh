#!/usr/bin/env bash
# Perf smoke for the ISSUE-6 hot paths, run by ctest in Release builds:
# executes bench/micro_restart and bench/micro_validate with a small fixed
# iteration cap and fails when the reuse+cache restart rate at 8 threads,
# or the bitset-scan validation rate, regresses more than 30% below the
# committed floor (tests/perf_baseline.txt — `validate:` prefix selects
# the validator floors). Both binaries abort on any fast/reference output
# disagreement (makespans, violation lists), so this gate also re-proves
# bit-identity on every CI run.
#
# Usage: perf_smoke.sh <micro_restart-binary> <baseline-file> [config] \
#                      [micro_validate-binary]
#   RESCHED_PERF_BASELINE  overrides the baseline file (per-machine floors)
#   RESCHED_PERF_SCALE     overrides the bench scale (default 0.34)
set -euo pipefail

BIN=$1
BASELINE=${RESCHED_PERF_BASELINE:-$2}
CONFIG=${3:-Release}
VALIDATE_BIN=${4:-}

if [[ "$CONFIG" != "Release" ]]; then
  echo "perf_smoke: skipped ($CONFIG build — floors are for Release)"
  exit 77
fi
[[ -x "$BIN" ]] || { echo "perf_smoke: missing binary $BIN" >&2; exit 1; }
[[ -f "$BASELINE" ]] || { echo "perf_smoke: missing baseline $BASELINE" >&2; exit 1; }

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

RESCHED_BENCH_SCALE=${RESCHED_PERF_SCALE:-0.34} RESCHED_BENCH_OUT="$OUT" \
    "$BIN" > "$OUT/log.txt" || {
  echo "perf_smoke: micro_restart failed (makespan mismatch or no schedule):" >&2
  cat "$OUT/log.txt" >&2
  exit 1
}

if [[ -n "$VALIDATE_BIN" ]]; then
  [[ -x "$VALIDATE_BIN" ]] || {
    echo "perf_smoke: missing binary $VALIDATE_BIN" >&2; exit 1; }
  RESCHED_BENCH_SCALE=${RESCHED_PERF_SCALE:-0.34} RESCHED_BENCH_OUT="$OUT" \
      "$VALIDATE_BIN" > "$OUT/validate_log.txt" || {
    echo "perf_smoke: micro_validate failed (scan disagreement):" >&2
    cat "$OUT/validate_log.txt" >&2
    exit 1
  }
fi

python3 - "$OUT" "$BASELINE" <<'EOF'
import csv
import os
import sys

out_dir, baseline_path = sys.argv[1], sys.argv[2]

restart_floors, validate_floors = {}, {}
with open(baseline_path) as fh:
    for line in fh:
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        instance, rate = line.split()
        if instance.startswith("validate:"):
            validate_floors[instance.removeprefix("validate:")] = float(rate)
        else:
            restart_floors[instance] = float(rate)


def check(csv_path, floors, row_filter, rate_column, unit):
    if not floors:
        return 0
    if not os.path.exists(csv_path):
        print(f"perf_smoke: FAIL missing {csv_path}")
        return 1
    measured = {}
    with open(csv_path) as fh:
        for row in csv.DictReader(fh):
            if row_filter(row):
                measured[row["instance"]] = float(row[rate_column])
    status = 0
    for instance, floor in sorted(floors.items()):
        rate = measured.get(instance)
        if rate is None:
            print(f"perf_smoke: FAIL {instance}: no measurement in {csv_path}")
            status = 1
            continue
        threshold = 0.7 * floor  # 30% regression allowance below the floor
        verdict = "ok" if rate >= threshold else "FAIL"
        print(f"perf_smoke: {verdict} {instance}: {rate:.1f} {unit} "
              f"(floor {floor:.0f}, threshold {threshold:.1f})")
        if rate < threshold:
            status = 1
    return status


status = check(
    os.path.join(out_dir, "micro_restart.csv"), restart_floors,
    lambda row: row["mode"] == "reuse+cache" and row["threads"] == "8",
    "restarts_per_sec", "restarts/s")
if os.path.exists(os.path.join(out_dir, "validate_log.txt")):
    status |= check(
        os.path.join(out_dir, "micro_validate.csv"), validate_floors,
        lambda row: row["scan"] == "bitset",
        "validations_per_sec", "validations/s")
sys.exit(status)
EOF

echo "perf_smoke OK"
