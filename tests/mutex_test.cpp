// Behavioral tests for the annotated mutex wrappers (util/mutex.hpp).
//
// The wrappers must be observationally identical to the raw std
// primitives they shell — same exclusion, same RAII release (including
// on exception unwind), same condition-wait semantics — because the
// annotation rollout swapped them in under every lock in the tree. The
// cross-thread tests double as the TSan workload for the wrappers.
//
// Written in the patterns Clang's thread-safety analysis understands
// (TryLock result through a local bool, explicit wait loops), so the
// -Wthread-safety preset compiles this file warning-free.

#include "util/mutex.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace resched {
namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 5000;

TEST(MutexTest, MutualExclusionMatchesLockGuard) {
  // The same hammering workload through the annotated wrapper and
  // through the raw std::lock_guard reference must land on the same
  // (exact) total: no lost updates either way.
  struct Annotated {
    Mutex mu;
    long total RESCHED_GUARDED_BY(mu) = 0;
  } annotated;
  struct Raw {
    std::mutex mu;
    long total = 0;
  } raw;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&annotated, &raw] {
      for (int i = 0; i < kItersPerThread; ++i) {
        {
          MutexLock lock(annotated.mu);
          ++annotated.total;
        }
        {
          std::lock_guard<std::mutex> lock(raw.mu);
          ++raw.total;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  MutexLock lock(annotated.mu);
  EXPECT_EQ(annotated.total, static_cast<long>(kThreads) * kItersPerThread);
  EXPECT_EQ(annotated.total, raw.total);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  bool acquired_while_held = false;
  std::thread contender([&mu, &acquired_while_held] {
    if (mu.TryLock()) {
      acquired_while_held = true;
      mu.Unlock();
    }
  });
  contender.join();
  EXPECT_FALSE(acquired_while_held);
  mu.Unlock();

  // Released: TryLock must succeed again from any thread.
  const bool reacquired = mu.TryLock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mu.Unlock();
}

TEST(MutexTest, MutexLockReleasesOnException) {
  Mutex mu;
  bool threw = false;
  try {
    MutexLock lock(mu);
    throw std::runtime_error("unwind through the lock scope");
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  // Exactly like std::lock_guard, unwinding must have released the
  // mutex; a still-held mutex would fail (or deadlock) here.
  const bool free_again = mu.TryLock();
  EXPECT_TRUE(free_again);
  if (free_again) mu.Unlock();
}

// Minimal guarded channel exercising the CondVar explicit-wait-loop
// contract from the util/mutex.hpp header comment.
class Channel {
 public:
  void Push(int v) RESCHED_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      items_.push_back(v);
    }
    cv_.NotifyOne();
  }

  void Close() RESCHED_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  /// Blocks for the next item; false once closed and drained.
  bool Pop(int& out) RESCHED_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) cv_.Wait(lock);
    if (items_.empty()) return false;
    out = items_.front();
    items_.erase(items_.begin());
    return true;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::vector<int> items_ RESCHED_GUARDED_BY(mu_);
  bool closed_ RESCHED_GUARDED_BY(mu_) = false;
};

TEST(CondVarTest, WaitNotifyHandsOffEveryItem) {
  Channel channel;
  constexpr int kItems = 2000;
  long consumed_sum = 0;
  std::thread consumer([&channel, &consumed_sum] {
    int v = 0;
    while (channel.Pop(v)) consumed_sum += v;
  });
  long produced_sum = 0;
  for (int i = 1; i <= kItems; ++i) {
    channel.Push(i);
    produced_sum += i;
  }
  channel.Close();
  consumer.join();
  EXPECT_EQ(consumed_sum, produced_sum);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  struct Gate {
    Mutex mu;
    CondVar cv;
    bool open RESCHED_GUARDED_BY(mu) = false;
    int woken RESCHED_GUARDED_BY(mu) = 0;
  } gate;

  std::vector<std::thread> waiters;
  waiters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back([&gate] {
      MutexLock lock(gate.mu);
      while (!gate.open) gate.cv.Wait(lock);
      ++gate.woken;
    });
  }
  {
    MutexLock lock(gate.mu);
    gate.open = true;
  }
  gate.cv.NotifyAll();
  for (auto& t : waiters) t.join();

  MutexLock lock(gate.mu);
  EXPECT_EQ(gate.woken, kThreads);
}

}  // namespace
}  // namespace resched
