// Unit tests for the CPM engine: windows, criticality, ordering edges with
// gaps, release times, delay propagation.
#include <gtest/gtest.h>

#include "taskgraph/timing.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

TimingContext MakeTiming(const TaskGraph& g,
                         const std::vector<TimeT>& exec) {
  TimingContext timing(g);
  for (std::size_t t = 0; t < exec.size(); ++t) {
    timing.SetExecTime(static_cast<TaskId>(t), exec[t]);
  }
  return timing;
}

TEST(TimingTest, ChainWindows) {
  const TaskGraph g = MakeChain(3);
  TimingContext timing = MakeTiming(g, {10, 20, 30});
  const TimeWindows& win = timing.Windows();
  EXPECT_EQ(win.makespan, 60);
  EXPECT_EQ(win.earliest_start, (std::vector<TimeT>{0, 10, 30}));
  EXPECT_EQ(win.latest_finish, (std::vector<TimeT>{10, 30, 60}));
  // Every chain task is critical.
  EXPECT_TRUE(win.critical[0]);
  EXPECT_TRUE(win.critical[1]);
  EXPECT_TRUE(win.critical[2]);
}

TEST(TimingTest, DiamondSlackAndCriticality) {
  const TaskGraph g = MakeDiamond();
  // a=10, b=50 (critical branch), c=20 (slack 30), d=10.
  TimingContext timing = MakeTiming(g, {10, 50, 20, 10});
  const TimeWindows& win = timing.Windows();
  EXPECT_EQ(win.makespan, 70);
  EXPECT_TRUE(win.critical[0]);
  EXPECT_TRUE(win.critical[1]);
  EXPECT_FALSE(win.critical[2]);
  EXPECT_TRUE(win.critical[3]);
  EXPECT_EQ(win.earliest_start[2], 10);
  EXPECT_EQ(win.latest_finish[2], 60);
  EXPECT_EQ(win.WindowLength(2), 50);
}

TEST(TimingTest, WindowsRequireAllExecTimes) {
  const TaskGraph g = MakeChain(2);
  TimingContext timing(g);
  timing.SetExecTime(0, 5);
  EXPECT_THROW((void)timing.Windows(), InternalError);
}

TEST(TimingTest, OrderingEdgeSerializes) {
  const TaskGraph g = testing::MakeIndependent(2);
  TimingContext timing = MakeTiming(g, {10, 10});
  EXPECT_EQ(timing.Windows().makespan, 10);
  timing.AddOrderingEdge(0, 1, /*gap=*/0);
  const TimeWindows& win = timing.Windows();
  EXPECT_EQ(win.makespan, 20);
  EXPECT_EQ(win.earliest_start[1], 10);
}

TEST(TimingTest, OrderingEdgeGapReservesTime) {
  const TaskGraph g = testing::MakeIndependent(2);
  TimingContext timing = MakeTiming(g, {10, 10});
  timing.AddOrderingEdge(0, 1, /*gap=*/7);
  EXPECT_EQ(timing.Windows().earliest_start[1], 17);
  EXPECT_EQ(timing.Windows().makespan, 27);
}

TEST(TimingTest, OrderingCycleDetected) {
  const TaskGraph g = testing::MakeIndependent(2);
  TimingContext timing = MakeTiming(g, {10, 10});
  timing.AddOrderingEdge(0, 1, 0);
  EXPECT_THROW(timing.AddOrderingEdge(1, 0, 0), InternalError);
}

TEST(TimingTest, OrderingEdgeAgainstGraphEdgeCycleDetected) {
  const TaskGraph g = MakeChain(2);  // 0 -> 1
  TimingContext timing = MakeTiming(g, {10, 10});
  EXPECT_THROW(timing.AddOrderingEdge(1, 0, 0), InternalError);
}

TEST(TimingTest, ReleaseRaisesEarliestStart) {
  const TaskGraph g = MakeChain(2);
  TimingContext timing = MakeTiming(g, {10, 10});
  timing.RaiseRelease(1, 25);
  const TimeWindows& win = timing.Windows();
  EXPECT_EQ(win.earliest_start[1], 25);
  EXPECT_EQ(win.makespan, 35);
}

TEST(TimingTest, ReleaseNeverLowers) {
  const TaskGraph g = MakeChain(2);
  TimingContext timing = MakeTiming(g, {10, 10});
  timing.RaiseRelease(1, 25);
  timing.RaiseRelease(1, 5);  // no-op
  EXPECT_EQ(timing.Release(1), 25);
  EXPECT_EQ(timing.Windows().earliest_start[1], 25);
}

TEST(TimingTest, DelayPropagatesDownstream) {
  const TaskGraph g = MakeChain(3);
  TimingContext timing = MakeTiming(g, {10, 10, 10});
  timing.RaiseRelease(0, 100);
  const TimeWindows& win = timing.Windows();
  EXPECT_EQ(win.earliest_start, (std::vector<TimeT>{100, 110, 120}));
  EXPECT_EQ(win.makespan, 130);
}

TEST(TimingTest, ExecTimeChangeRecomputesWindows) {
  const TaskGraph g = MakeChain(2);
  TimingContext timing = MakeTiming(g, {10, 10});
  EXPECT_EQ(timing.Windows().makespan, 20);
  timing.SetExecTime(0, 50);
  EXPECT_EQ(timing.Windows().makespan, 60);
}

TEST(TimingTest, CombinedTopologicalOrderIncludesExtraEdges) {
  const TaskGraph g = testing::MakeIndependent(3);
  TimingContext timing = MakeTiming(g, {1, 1, 1});
  timing.AddOrderingEdge(2, 0, 0);
  timing.AddOrderingEdge(0, 1, 0);
  const auto order = timing.CombinedTopologicalOrder();
  auto pos = [&](TaskId t) {
    return std::find(order.begin(), order.end(), t) - order.begin();
  };
  EXPECT_LT(pos(2), pos(0));
  EXPECT_LT(pos(0), pos(1));
}

TEST(TimingTest, ParallelBranchesIndependentWindows) {
  const TaskGraph g = testing::MakeIndependent(3);
  TimingContext timing = MakeTiming(g, {5, 9, 3});
  const TimeWindows& win = timing.Windows();
  EXPECT_EQ(win.makespan, 9);
  // Only the longest task is critical; others have slack.
  EXPECT_FALSE(win.critical[0]);
  EXPECT_TRUE(win.critical[1]);
  EXPECT_FALSE(win.critical[2]);
  EXPECT_EQ(win.latest_finish[0], 9);
}

TEST(TimingTest, NegativeGapRejected) {
  const TaskGraph g = testing::MakeIndependent(2);
  TimingContext timing = MakeTiming(g, {1, 1});
  EXPECT_THROW(timing.AddOrderingEdge(0, 1, -1), InternalError);
}

}  // namespace
}  // namespace resched
