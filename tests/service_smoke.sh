#!/usr/bin/env bash
# End-to-end smoke of the reschedd service through the CLI: a scripted
# stdio session (batch over stdin), journal capture + offline replay, and
# the unix-socket serve/submit pair. Invoked by ctest with the CLI binary
# path as $1.
set -euo pipefail

CLI=$1
TMP=$(mktemp -d)
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# --- build stamping -----------------------------------------------------------
"$CLI" --version | grep -q '^resched ' || fail "--version banner"

# --- a scripted stdio session -------------------------------------------------
"$CLI" gen --tasks 12 --seed 3 --out "$TMP/i.json"

{
  "$CLI" submit --print --instance "$TMP/i.json" --id job1
  "$CLI" submit --print --instance "$TMP/i.json" --id job2   # duplicate
  "$CLI" submit --print --verb simulate --instance "$TMP/i.json" --id sim1 \
      --fault-rate 0.1 --trials 2
  echo '{"verb":"stats","id":"st"}'
  echo 'this is not json'
  echo '{"verb":"shutdown","id":"bye"}'
} > "$TMP/batch.jsonl"

# One worker: the batch is processed in order, so the duplicate is
# guaranteed to hit the result cache rather than race the first copy.
"$CLI" serve --stdio --workers 1 --journal "$TMP/journal.jsonl" \
    < "$TMP/batch.jsonl" > "$TMP/out.jsonl" 2> "$TMP/err.txt" \
    || fail "serve --stdio exited non-zero"

# Handshake + one response per input line (including the parse error).
[ "$(wc -l < "$TMP/out.jsonl")" -eq 7 ] || fail "expected 7 output lines"
head -n 1 "$TMP/out.jsonl" | grep -q '"protocol"' || fail "handshake missing"
grep -q '"parse_error"' "$TMP/out.jsonl" || fail "bad line not rejected"
grep -q '"id":"st"' "$TMP/out.jsonl" || fail "stats response missing"
tail -n 1 "$TMP/out.jsonl" | grep -q '"id":"bye"' || fail "shutdown ack not last"
tail -n 1 "$TMP/out.jsonl" | grep -q '"drained":true' || fail "drain flag"
grep -q "1 cache hit" "$TMP/err.txt" || fail "duplicate was not a cache hit"

# Duplicate submission must be answered bit-identically modulo the id.
grep '"id":"job1"' "$TMP/out.jsonl" | sed 's/"id":"job1"//' > "$TMP/job1.body"
grep '"id":"job2"' "$TMP/out.jsonl" | sed 's/"id":"job2"//' > "$TMP/job2.body"
cmp "$TMP/job1.body" "$TMP/job2.body" || fail "cache hit is not bit-identical"

# --- journal replay -----------------------------------------------------------
[ -s "$TMP/journal.jsonl" ] || fail "journal not written"
out=$("$CLI" replay --journal "$TMP/journal.jsonl") \
    || fail "replay reported mismatches"
echo "$out" | grep -q "0 mismatched" || fail "replay summary: $out"
echo "$out" | grep -q "3 replayed" || fail "replay count: $out"

# --- unix-socket serve/submit -------------------------------------------------
SOCK="$TMP/reschedd.sock"
"$CLI" serve --socket "$SOCK" --workers 1 2> "$TMP/srv.txt" &
SRV_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || fail "socket never appeared"

"$CLI" submit --socket "$SOCK" --instance "$TMP/i.json" --id net1 \
    > "$TMP/net.out" 2> "$TMP/net.err" || fail "socket submit failed"
grep -q '"ok":true' "$TMP/net.out" || fail "socket response not ok"
grep -q '"protocol"' "$TMP/net.err" || fail "client did not see handshake"

# A failing request exits non-zero but still yields a well-formed response.
if "$CLI" submit --socket "$SOCK" --verb cancel --target nosuch \
    > "$TMP/cancel.out" 2>/dev/null; then
  : # cancel of an unknown id is ok:true with cancelled:false
fi
grep -q '"cancelled":false' "$TMP/cancel.out" || fail "cancel miss response"

"$CLI" submit --socket "$SOCK" --verb shutdown > /dev/null 2>&1 \
    || fail "socket shutdown failed"
wait "$SRV_PID" || fail "server exited non-zero after shutdown"
SRV_PID=""

echo "service_smoke OK"
