// Tests for the task-graph analysis utilities.
#include <gtest/gtest.h>

#include "taskgraph/analysis.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

TEST(AnalysisTest, ChainLevels) {
  const TaskGraph g = testing::MakeChain(4);
  EXPECT_EQ(ComputeLevels(g), (std::vector<std::size_t>{0, 1, 2, 3}));
  const GraphStats stats = AnalyzeGraph(g);
  EXPECT_EQ(stats.depth, 4u);
  EXPECT_EQ(stats.max_width, 1u);
  EXPECT_EQ(stats.num_sources, 1u);
  EXPECT_EQ(stats.num_sinks, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_width, 1.0);
  EXPECT_DOUBLE_EQ(stats.redundancy, 0.0);
}

TEST(AnalysisTest, DiamondLevels) {
  const TaskGraph g = testing::MakeDiamond();
  EXPECT_EQ(ComputeLevels(g), (std::vector<std::size_t>{0, 1, 1, 2}));
  const GraphStats stats = AnalyzeGraph(g);
  EXPECT_EQ(stats.depth, 3u);
  EXPECT_EQ(stats.max_width, 2u);
  EXPECT_EQ(stats.width_profile, (std::vector<std::size_t>{1, 2, 1}));
}

TEST(AnalysisTest, IndependentTasksAreOneLevel) {
  const TaskGraph g = testing::MakeIndependent(5);
  const GraphStats stats = AnalyzeGraph(g);
  EXPECT_EQ(stats.depth, 1u);
  EXPECT_EQ(stats.max_width, 5u);
  EXPECT_EQ(stats.num_sources, 5u);
  EXPECT_EQ(stats.num_sinks, 5u);
  EXPECT_DOUBLE_EQ(stats.density, 0.0);
}

TEST(AnalysisTest, RedundantEdgeDetected) {
  // a -> b -> c plus the shortcut a -> c.
  TaskGraph g = testing::MakeChain(3);
  g.AddEdge(0, 2);
  const auto redundant = TransitivelyRedundantEdges(g);
  ASSERT_EQ(redundant.size(), 1u);
  EXPECT_EQ(redundant[0], std::make_pair(TaskId{0}, TaskId{2}));
  EXPECT_GT(AnalyzeGraph(g).redundancy, 0.0);
}

TEST(AnalysisTest, TransitiveReductionRemovesOnlyShortcuts) {
  TaskGraph g = testing::MakeChain(4);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(0, 3);
  g.SetEdgeData(0, 1, 777);  // payload on a kept edge survives
  const TaskGraph reduced = TransitiveReduction(g);
  EXPECT_EQ(reduced.NumEdges(), 3u);  // the pure chain
  EXPECT_TRUE(reduced.HasEdge(0, 1));
  EXPECT_TRUE(reduced.HasEdge(1, 2));
  EXPECT_TRUE(reduced.HasEdge(2, 3));
  EXPECT_FALSE(reduced.HasEdge(0, 2));
  EXPECT_EQ(reduced.EdgeData(0, 1), 777);
  // Implementations preserved.
  EXPECT_EQ(reduced.GetTask(0).impls.size(), g.GetTask(0).impls.size());
}

TEST(AnalysisTest, ReductionPreservesReachability) {
  GeneratorOptions gen;
  gen.num_tasks = 30;
  gen.extra_edge_prob = 0.3;  // force shortcuts
  const Instance inst =
      GenerateInstance(MakeZedBoard(), gen, 5, "red");
  const TaskGraph reduced = TransitiveReduction(inst.graph);
  EXPECT_LE(reduced.NumEdges(), inst.graph.NumEdges());
  // Same levels => same longest-path structure.
  EXPECT_EQ(ComputeLevels(reduced), ComputeLevels(inst.graph));
  // And reduction is idempotent.
  const TaskGraph twice = TransitiveReduction(reduced);
  EXPECT_EQ(twice.NumEdges(), reduced.NumEdges());
}

TEST(AnalysisTest, GeneratorRespectsWidthCap) {
  GeneratorOptions gen;
  gen.num_tasks = 60;
  gen.max_width = 6;
  const Instance inst = GenerateInstance(MakeZedBoard(), gen, 9, "w");
  const GraphStats stats = AnalyzeGraph(inst.graph);
  // Level widths can exceed the per-layer cap slightly because long-range
  // extra edges shift levels, but not wildly.
  EXPECT_LE(stats.max_width, 2 * gen.max_width);
  EXPECT_GE(stats.depth, 60u / gen.max_width / 2);
}

TEST(AnalysisTest, ToStringMentionsShape) {
  const GraphStats stats = AnalyzeGraph(testing::MakeDiamond());
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("4 tasks"), std::string::npos);
  EXPECT_NE(text.find("depth 3"), std::string::npos);
}

}  // namespace
}  // namespace resched
