#!/usr/bin/env bash
# Self-test for tools/resched_lint.py, run by ctest:
#  1. the real repo must lint clean (this is the CI gate), and
#  2. every rule must demonstrably fire on a seeded violation, so the lint
#     cannot silently rot into a no-op.
# Usage: lint_test.sh <python3> <resched_lint.py> <repo-root>
set -euo pipefail

PYTHON=$1
LINT=$2
ROOT=$3

fail() { echo "FAIL: $1" >&2; exit 1; }

# --- the repo itself is clean ------------------------------------------------
"$PYTHON" "$LINT" --root "$ROOT" || fail "repo does not lint clean"

# --- seeded violations are caught -------------------------------------------
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
mkdir -p "$TMP/src/core" "$TMP/src/io" "$TMP/src/service"

cat > "$TMP/src/core/bad.cpp" <<'EOF'
#include <cstdlib>
int f() {
  int* p = new int(3);
  delete p;
  srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;
  return std::rand();
}
EOF
cat > "$TMP/src/core/cycle_a.hpp" <<'EOF'
#include "core/cycle_b.hpp"
EOF
cat > "$TMP/src/core/cycle_b.hpp" <<'EOF'
#pragma once
#include "core/cycle_a.hpp"
EOF
cat > "$TMP/src/io/emit.cpp" <<'EOF'
#include <unordered_map>
void emit(const std::unordered_map<int, int>& m) { (void)m; }
EOF
cat > "$TMP/src/core/swallow.cpp" <<'EOF'
void risky();
void quiet() {
  try {
    risky();
  } catch (...) {
  }
}
EOF
cat > "$TMP/src/core/adhoc_seed.cpp" <<'EOF'
#include "util/rng.hpp"
unsigned long long worker_stream(unsigned long long seed, unsigned long long w) {
  return resched::HashCombine(seed, w);
}
EOF
cat > "$TMP/src/service/leaky_close.cpp" <<'EOF'
#include <unistd.h>
void drop(int fd) {
  close(fd);
}
EOF
cat > "$TMP/src/service/blind_log.cpp" <<'EOF'
#include <fstream>
#include <string>
void append(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::app);
  out << line << "\n";
}
EOF
mkdir -p "$TMP/src/floorplan"
cat > "$TMP/src/floorplan/hot.cpp" <<'EOF'
#include <vector>
std::vector<bool> flags;
std::vector<int> collect(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(i);
  }
  return out;
}
EOF
cat > "$TMP/src/core/rogue_simd.cpp" <<'EOF'
#include <immintrin.h>
bool any(const unsigned long long* a, const unsigned long long* b) {
  __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  return _mm256_testz_si256(va, vb) == 0;
}
EOF

mkdir -p "$TMP/src/router"
cat > "$TMP/src/router/bad_write.cpp" <<'EOF'
#include "util/socket.hpp"
void leak_frame(resched::StreamSocket& sock, const std::string& line) {
  sock.SendAll(line);
  std::string buf;
  sock.RecvSome(buf);
}
EOF

out=$("$PYTHON" "$LINT" --root "$TMP") && fail "seeded violations not detected"
for rule in no-std-rand no-wall-clock-seed no-argless-random-device \
    no-unordered-in-output pragma-once include-cycle no-naked-new \
    no-silent-catch no-adhoc-seed-derivation \
    no-unchecked-syscall-return no-unchecked-stream-write \
    no-vector-bool-hot reserve-before-push-hot \
    no-raw-intrinsics-outside-simd no-unframed-tcp-write; do
  echo "$out" | grep -q "\[$rule\]" || fail "rule $rule did not fire"
done

# --- HashCombine on non-seed data is fine; so is DeriveSeed ------------------
mkdir -p "$TMP/ok/src/core" "$TMP/ok/src/util"
cat > "$TMP/ok/src/core/hashing.cpp" <<'EOF'
#include "util/rng.hpp"
unsigned long long key(unsigned long long a, unsigned long long b) {
  return resched::HashCombine(a, b);  // container hashing, not seeding
}
unsigned long long trial(unsigned long long seed, unsigned long long i) {
  return resched::DeriveSeed(0x5EEDULL ^ seed, i);
}
EOF
"$PYTHON" "$LINT" --root "$TMP/ok" \
    || fail "no-adhoc-seed-derivation fired on sanctioned usage"

# --- inline suppression works ------------------------------------------------
CLEAN=$(mktemp -d)
trap 'rm -rf "$TMP" "$CLEAN"' EXIT
mkdir -p "$CLEAN/src/core"
cat > "$CLEAN/src/core/suppressed.cpp" <<'EOF'
int g() {
  std::random_device rd;  // resched-lint: allow(no-argless-random-device)
  return 0;
}
EOF
"$PYTHON" "$LINT" --root "$CLEAN" || fail "suppression ignored"

# --- token rules must not fire inside comments or string literals ------------
cat > "$CLEAN/src/core/prose.cpp" <<'EOF'
// creates a new region; never calls std::rand
const char* kDoc = "time(nullptr) is banned";
int h() { return 0; }
EOF
"$PYTHON" "$LINT" --root "$CLEAN" \
    || fail "lint fired inside comments/strings"

# --- catch-alls that rethrow, capture, or log are acceptable ------------------
cat > "$CLEAN/src/core/handled.cpp" <<'EOF'
#include <cstdio>
#include <exception>
void risky();
void rethrows() {
  try { risky(); } catch (...) { throw; }
}
void captures() {
  std::exception_ptr p;
  try { risky(); } catch (...) { p = std::current_exception(); }
}
void logs() {
  try { risky(); } catch (...) { std::fprintf(stderr, "risky failed\n"); }
}
EOF
"$PYTHON" "$LINT" --root "$CLEAN" \
    || fail "no-silent-catch fired on a handled catch-all"

# --- reserved / reused / out-of-scope push_back patterns are acceptable ------
mkdir -p "$CLEAN/src/floorplan" "$CLEAN/src/sched"
cat > "$CLEAN/src/floorplan/sized.cpp" <<'EOF'
#include <vector>
std::vector<int> reserved(int n) {
  std::vector<int> out;
  out.reserve(static_cast<unsigned long>(n));
  for (int i = 0; i < n; ++i) out.push_back(i);
  return out;
}
void refill(std::vector<int>& scratch, int n) {
  scratch.clear();  // reuse: capacity persists across calls
  for (int i = 0; i < n; ++i) scratch.push_back(i);
}
EOF
cat > "$CLEAN/src/sched/cold.cpp" <<'EOF'
#include <vector>
std::vector<bool> outside_hot_scope;
std::vector<int> collect(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) out.push_back(i);
  return out;
}
EOF
"$PYTHON" "$LINT" --root "$CLEAN" \
    || fail "hot-path rules fired on sanctioned usage"

# --- checked / deliberately-voided syscalls are acceptable --------------------
# Also: the rule is scoped to the service layer, so statement-position
# syscalls elsewhere (src/core/) are not flagged.
mkdir -p "$CLEAN/src/service"
cat > "$CLEAN/src/service/careful_close.cpp" <<'EOF'
#include <unistd.h>
#include <stdexcept>
void drop(int fd) {
  (void)::close(fd);
}
void strict(int fd) {
  if (::close(fd) != 0) throw std::runtime_error("close failed");
}
void assigned(int fd, const char* buf, unsigned long n) {
  long sent =
      ::write(fd, buf, n);
  (void)sent;
}
EOF
cat > "$CLEAN/src/core/not_service.cpp" <<'EOF'
#include <unistd.h>
void elsewhere(int fd) {
  close(fd);
}
EOF
"$PYTHON" "$LINT" --root "$CLEAN" \
    || fail "no-unchecked-syscall-return fired on sanctioned usage"

# --- state-checked stream writes are acceptable; so are reads and other dirs --
cat > "$CLEAN/src/service/checked_log.cpp" <<'EOF'
#include <fstream>
#include <stdexcept>
#include <string>
void append(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::app);
  out << line << "\n";
  if (!out.good()) throw std::runtime_error("journal write failed");
}
std::string slurp(const std::string& path) {
  std::ifstream in(path);  // reads are exempt: the parser sees failures
  std::string text, line;
  while (std::getline(in, line)) text += line;
  return text;
}
EOF
cat > "$CLEAN/src/sched/report.cpp" <<'EOF'
#include <fstream>
void dump(const char* path) {
  std::ofstream out(path);  // outside src/service/: not this rule's scope
  out << "report\n";
}
EOF
"$PYTHON" "$LINT" --root "$CLEAN" \
    || fail "no-unchecked-stream-write fired on sanctioned usage"

# --- framed TCP writes are acceptable; raw ones outside scope too -------------
mkdir -p "$CLEAN/src/router"
cat > "$CLEAN/src/router/framed.cpp" <<'EOF'
#include "service/framing.hpp"
#include "util/socket.hpp"
bool forward(resched::StreamSocket& sock, const std::string& line) {
  if (!resched::service::WriteFrame(sock, line)) return false;
  resched::service::FrameReader reader(sock);
  std::string response;
  return reader.Read(response) == resched::service::FrameResult::kFrame;
}
void probe(resched::StreamSocket& sock) {
  std::string buf;
  sock.RecvSome(buf);  // resched-lint: allow(no-unframed-tcp-write)
}
EOF
cat > "$CLEAN/src/service/line_client.cpp" <<'EOF'
#include "util/socket.hpp"
bool send_line(resched::StreamSocket& sock, const std::string& line) {
  return sock.SendAll(line + "\n");  // newline transport: not this scope
}
EOF
"$PYTHON" "$LINT" --root "$CLEAN" \
    || fail "no-unframed-tcp-write fired on sanctioned usage"

# --- intrinsics are sanctioned only inside src/util/simd.hpp ------------------
# NEON spellings must be caught too, and the dispatch layer itself is the
# one file allowed to contain raw intrinsics.
mkdir -p "$CLEAN/src/util"
cat > "$CLEAN/src/util/simd.hpp" <<'EOF'
#pragma once
#include <cstdint>
namespace resched::simd {
inline std::uint64_t OrLane(const std::uint64_t* p) {
#if defined(__AVX2__)
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  (void)v;
#endif
  return p[0];
}
}  // namespace resched::simd
EOF
"$PYTHON" "$LINT" --root "$CLEAN" \
    || fail "no-raw-intrinsics-outside-simd fired on src/util/simd.hpp"
mkdir -p "$TMP/src/sched"
cat > "$TMP/src/sched/neon_rogue.cpp" <<'EOF'
#include <arm_neon.h>
unsigned long long first(const unsigned long long* p) {
  uint64x2_t v = vld1q_u64(p);
  return vgetq_lane_u64(v, 0);
}
EOF
out=$("$PYTHON" "$LINT" --root "$TMP" "$TMP/src/sched/neon_rogue.cpp") \
    && fail "NEON intrinsics outside the simd layer not detected"
echo "$out" | grep -q "\[no-raw-intrinsics-outside-simd\]" \
    || fail "no-raw-intrinsics-outside-simd did not fire on NEON spellings"

echo "lint_test OK"
