// Tests for the floorplanning substrate: fabric queries, placement
// enumeration and the feasibility search.
#include <gtest/gtest.h>

#include "floorplan/floorplanner.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::MakeSmallDevice;

FpgaDevice MakeTinyDevice() {
  // 6 columns x 2 rows: CLB CLB BRAM CLB CLB DSP (explicit layout).
  const ResourceModel model = MakeClbBramDspModel();
  FabricGeometry geom;
  geom.rows = 2;
  geom.columns = {
      ColumnSpec{0, 100}, ColumnSpec{0, 100}, ColumnSpec{1, 10},
      ColumnSpec{0, 100}, ColumnSpec{0, 100}, ColumnSpec{2, 20},
  };
  return FpgaDevice("tiny", model, std::move(geom));
}

// ---------------------------------------------------------------- fabric

TEST(FabricTest, RowSlicePrefixSums) {
  const Fabric fabric(MakeTinyDevice());
  EXPECT_EQ(fabric.Columns(), 6u);
  EXPECT_EQ(fabric.Rows(), 2u);
  EXPECT_EQ(fabric.RowSlice(0, 2), ResourceVec({200, 0, 0}));
  EXPECT_EQ(fabric.RowSlice(0, 3), ResourceVec({200, 10, 0}));
  EXPECT_EQ(fabric.RowSlice(2, 4), ResourceVec({200, 10, 20}));
  EXPECT_EQ(fabric.RowSlice(0, 6), ResourceVec({400, 10, 20}));
  EXPECT_EQ(fabric.RowSlice(3, 0), ResourceVec({0, 0, 0}));
}

TEST(FabricTest, RectScalesByHeight) {
  const Fabric fabric(MakeTinyDevice());
  EXPECT_EQ(fabric.RectResources(0, 3, 2), ResourceVec({400, 20, 0}));
}

TEST(FabricTest, CapacityMatchesDevice) {
  const FpgaDevice device = MakeTinyDevice();
  const Fabric fabric(device);
  EXPECT_EQ(fabric.Capacity(), device.Capacity());
  EXPECT_EQ(fabric.Capacity(), ResourceVec({800, 20, 40}));
}

TEST(FabricTest, OutOfRangeQueriesThrow) {
  const Fabric fabric(MakeTinyDevice());
  EXPECT_THROW((void)fabric.RowSlice(5, 3), InternalError);
  EXPECT_THROW((void)fabric.RectResources(0, 2, 5), InternalError);
}

// ---------------------------------------------------------------- Rect

TEST(RectTest, OverlapSemantics) {
  const Rect a{0, 0, 2, 2};
  EXPECT_TRUE(a.Overlaps(Rect{1, 1, 2, 2}));
  EXPECT_FALSE(a.Overlaps(Rect{2, 0, 2, 2}));  // touching edges do not overlap
  EXPECT_FALSE(a.Overlaps(Rect{0, 2, 2, 2}));
  EXPECT_TRUE(a.Overlaps(a));
}

// ---------------------------------------------------------------- placements

TEST(PlacementTest, FindsMinimalWidths) {
  const Fabric fabric(MakeTinyDevice());
  // 150 CLB at height 1 needs 2 CLB columns from col 0.
  const auto placements =
      EnumerateFeasiblePlacements(fabric, ResourceVec({150, 0, 0}));
  ASSERT_FALSE(placements.empty());
  for (const Rect& r : placements) {
    // Every returned placement must actually satisfy the requirement.
    EXPECT_TRUE(ResourceVec({150, 0, 0})
                    .FitsWithin(fabric.RectResources(r.col0, r.width,
                                                     r.height)));
  }
  // The minimal one: col0=0, width 2, height 1.
  bool found_minimal = false;
  for (const Rect& r : placements) {
    if (r.col0 == 0 && r.width == 2 && r.height == 1) found_minimal = true;
  }
  EXPECT_TRUE(found_minimal);
}

TEST(PlacementTest, BramRequirementForcesBramColumn) {
  const Fabric fabric(MakeTinyDevice());
  const auto placements =
      EnumerateFeasiblePlacements(fabric, ResourceVec({0, 5, 0}));
  ASSERT_FALSE(placements.empty());
  for (const Rect& r : placements) {
    // Must span column 2 (the only BRAM column).
    EXPECT_LE(r.col0, 2u);
    EXPECT_GT(r.col0 + r.width, 2u);
  }
}

TEST(PlacementTest, ImpossibleRequirementYieldsNothing) {
  const Fabric fabric(MakeTinyDevice());
  EXPECT_TRUE(
      EnumerateFeasiblePlacements(fabric, ResourceVec({10000, 0, 0})).empty());
  EXPECT_TRUE(
      EnumerateFeasiblePlacements(fabric, ResourceVec({0, 100, 0})).empty());
}

TEST(PlacementTest, WholeFabricRequirementHasOnePlacement) {
  const Fabric fabric(MakeTinyDevice());
  const auto placements =
      EnumerateFeasiblePlacements(fabric, ResourceVec({800, 20, 40}));
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].width, 6u);
  EXPECT_EQ(placements[0].height, 2u);
}

TEST(PlacementTest, CapIsRespected) {
  const Fabric fabric(MakeSmallDevice());
  const auto placements =
      EnumerateFeasiblePlacements(fabric, ResourceVec({100, 0, 0}), 5);
  EXPECT_EQ(placements.size(), 5u);
}

// ---------------------------------------------------------------- floorplanner

TEST(FloorplannerTest, EmptyRegionSetIsFeasible) {
  const auto result = FindFloorplan(MakeTinyDevice(), {});
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.rects.empty());
}

TEST(FloorplannerTest, SingleRegionFeasible) {
  const FpgaDevice device = MakeTinyDevice();
  const auto result = FindFloorplan(device, {ResourceVec({150, 0, 0})});
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(
      IsValidFloorplan(device, {ResourceVec({150, 0, 0})}, result.rects));
}

TEST(FloorplannerTest, TwoRegionsSideBySide) {
  const FpgaDevice device = MakeTinyDevice();
  const std::vector<ResourceVec> regions{ResourceVec({300, 0, 0}),
                                         ResourceVec({300, 0, 0})};
  const auto result = FindFloorplan(device, regions);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(IsValidFloorplan(device, regions, result.rects));
  EXPECT_FALSE(result.rects[0].Overlaps(result.rects[1]));
}

TEST(FloorplannerTest, AggregateOverflowIsInfeasible) {
  const FpgaDevice device = MakeTinyDevice();
  const std::vector<ResourceVec> regions{ResourceVec({500, 0, 0}),
                                         ResourceVec({500, 0, 0})};
  const auto result = FindFloorplan(device, regions);
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.budget_exhausted);  // certain "no", not a timeout
}

TEST(FloorplannerTest, GeometricContentionDetected) {
  // Two regions that each need BRAM: the tiny device has ONE BRAM column
  // with 2 rows, so both must stack vertically over column 2 — each with
  // height 1. Each also needs 150 CLB which a 1-row slice around column 2
  // can provide (cols 0..4 at h=1 = 400 CLB). So this IS feasible.
  const FpgaDevice device = MakeTinyDevice();
  const std::vector<ResourceVec> both_bram{ResourceVec({150, 5, 0}),
                                           ResourceVec({150, 5, 0})};
  const auto ok = FindFloorplan(device, both_bram);
  ASSERT_TRUE(ok.feasible);
  EXPECT_TRUE(IsValidFloorplan(device, both_bram, ok.rects));

  // Three BRAM regions cannot fit over a 2-row single BRAM column even
  // though aggregate BRAM (15 <= 20) would allow it.
  const std::vector<ResourceVec> three{ResourceVec({100, 5, 0}),
                                       ResourceVec({100, 5, 0}),
                                       ResourceVec({100, 5, 0})};
  const auto bad = FindFloorplan(device, three);
  EXPECT_FALSE(bad.feasible);
}

TEST(FloorplannerTest, ManySmallRegionsOnZynq) {
  const FpgaDevice device = MakeXc7z020();
  std::vector<ResourceVec> regions(8, ResourceVec({800, 0, 0}));
  const auto result = FindFloorplan(device, regions);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(IsValidFloorplan(device, regions, result.rects));
}

TEST(FloorplannerTest, NodeBudgetReportsExhaustion) {
  const FpgaDevice device = MakeXc7z020();
  // Nearly fill the device so the search has to work, with a 1-node budget.
  std::vector<ResourceVec> regions(6, ResourceVec({2100, 20, 30}));
  FloorplanOptions options;
  options.max_nodes = 1;
  const auto result = FindFloorplan(device, regions, options);
  if (!result.feasible) {
    EXPECT_TRUE(result.budget_exhausted);
  }
}

TEST(FloorplannerTest, IsValidFloorplanRejectsBadInputs) {
  const FpgaDevice device = MakeTinyDevice();
  const std::vector<ResourceVec> regions{ResourceVec({150, 0, 0})};
  // Wrong count.
  EXPECT_FALSE(IsValidFloorplan(device, regions, {}));
  // Out of fabric.
  EXPECT_FALSE(
      IsValidFloorplan(device, regions, {Rect{5, 0, 3, 1}}));
  // Insufficient resources.
  EXPECT_FALSE(IsValidFloorplan(device, regions, {Rect{0, 0, 1, 1}}));
  // Degenerate rect.
  EXPECT_FALSE(IsValidFloorplan(device, regions, {Rect{0, 0, 0, 1}}));
  // Overlap between two rects.
  const std::vector<ResourceVec> two{ResourceVec({100, 0, 0}),
                                     ResourceVec({100, 0, 0})};
  EXPECT_FALSE(IsValidFloorplan(device, two,
                                {Rect{0, 0, 2, 1}, Rect{1, 0, 2, 1}}));
}

TEST(FloorplannerTest, ResultRectsMatchRegionOrder) {
  const FpgaDevice device = MakeTinyDevice();
  // One DSP-needing region, one BRAM-needing region: rects must cover the
  // right columns in the right order.
  const std::vector<ResourceVec> regions{ResourceVec({0, 0, 10}),
                                         ResourceVec({0, 5, 0})};
  const auto result = FindFloorplan(device, regions);
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.rects.size(), 2u);
  const Fabric fabric(device);
  EXPECT_TRUE(regions[0].FitsWithin(fabric.RectResources(
      result.rects[0].col0, result.rects[0].width, result.rects[0].height)));
  EXPECT_TRUE(regions[1].FitsWithin(fabric.RectResources(
      result.rects[1].col0, result.rects[1].width, result.rects[1].height)));
}

}  // namespace
}  // namespace resched
