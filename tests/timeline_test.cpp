// Differential property sweep for the word-packed timeline kernels
// (util/timeline.hpp): every kernel must agree bit-for-bit with its
// one-bit-at-a-time reference in timeline::scalar across randomized
// interval sets, with deliberate pressure on word boundaries (indices
// near multiples of 64) and zero-length ranges.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/timeline.hpp"

namespace resched {
namespace {

namespace tl = resched::timeline;

/// Draws an index biased toward word boundaries: half the time a uniform
/// index, half the time a multiple of 64 plus a small offset in [-2, 2].
std::size_t BoundaryBiasedIndex(Rng& rng, std::size_t num_bits) {
  if (rng.UniformInt(0, 1) == 0) {
    return static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(num_bits)));
  }
  const auto words = static_cast<std::int64_t>(num_bits / 64);
  const std::int64_t base = 64 * rng.UniformInt(0, words);
  const std::int64_t off = rng.UniformInt(-2, 2);
  const std::int64_t i = base + off;
  if (i < 0) return 0;
  if (i > static_cast<std::int64_t>(num_bits)) return num_bits;
  return static_cast<std::size_t>(i);
}

/// Random [begin, end) with begin <= end; occasionally zero-length.
std::pair<std::size_t, std::size_t> RandomRange(Rng& rng,
                                                std::size_t num_bits) {
  std::size_t a = BoundaryBiasedIndex(rng, num_bits);
  if (rng.UniformInt(0, 9) == 0) return {a, a};  // zero-length
  std::size_t b = BoundaryBiasedIndex(rng, num_bits);
  if (a > b) std::swap(a, b);
  return {a, b};
}

class TimelineDifferentialSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineDifferentialSweep, KernelsMatchScalarReference) {
  Rng rng(GetParam());
  const auto num_bits = static_cast<std::size_t>(rng.UniformInt(1, 700));
  const std::size_t words = tl::WordsFor(num_bits);

  std::vector<std::uint64_t> fast(words, 0);
  std::vector<std::uint64_t> ref(words, 0);

  for (int step = 0; step < 400; ++step) {
    const auto [begin, end] = RandomRange(rng, num_bits);
    switch (rng.UniformInt(0, 5)) {
      case 0: {
        tl::RangeSet(fast.data(), begin, end);
        tl::scalar::RangeSet(ref.data(), begin, end);
        break;
      }
      case 1: {
        tl::RangeClear(fast.data(), begin, end);
        tl::scalar::RangeClear(ref.data(), begin, end);
        break;
      }
      case 2: {
        EXPECT_EQ(tl::RangeAny(fast.data(), begin, end),
                  tl::scalar::RangeAny(ref.data(), begin, end))
            << "RangeAny [" << begin << ", " << end << ")";
        break;
      }
      case 3: {
        EXPECT_EQ(tl::RangeTestAndSet(fast.data(), begin, end),
                  tl::scalar::RangeTestAndSet(ref.data(), begin, end))
            << "RangeTestAndSet [" << begin << ", " << end << ")";
        break;
      }
      case 4: {
        EXPECT_EQ(tl::FindFirstSet(fast.data(), begin, end),
                  tl::scalar::FindFirstSet(ref.data(), begin, end))
            << "FindFirstSet [" << begin << ", " << end << ")";
        break;
      }
      case 5: {
        const auto len =
            static_cast<std::size_t>(rng.UniformInt(0, 130));
        EXPECT_EQ(tl::FirstFitGap(fast.data(), num_bits, begin, len),
                  tl::scalar::FirstFitGap(ref.data(), num_bits, begin, len))
            << "FirstFitGap from=" << begin << " len=" << len;
        break;
      }
    }
    ASSERT_EQ(fast, ref) << "word images diverged after step " << step;
  }

  // AnyIntersect against a second randomized set.
  std::vector<std::uint64_t> other(words, 0);
  for (int i = 0; i < 20; ++i) {
    const auto [begin, end] = RandomRange(rng, num_bits);
    tl::RangeSet(other.data(), begin, end);
  }
  EXPECT_EQ(tl::AnyIntersect(fast.data(), other.data(), words),
            tl::scalar::AnyIntersect(ref.data(), other.data(), words));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineDifferentialSweep,
                         ::testing::Range<std::uint64_t>(1, 40));

// ------------------------------------------------- deterministic edges

TEST(TimelineTest, EmptyAndFullWordRanges) {
  std::vector<std::uint64_t> w(3, 0);
  tl::RangeSet(w.data(), 0, 0);
  EXPECT_EQ(w, std::vector<std::uint64_t>(3, 0));
  EXPECT_FALSE(tl::RangeAny(w.data(), 0, 0));
  EXPECT_FALSE(tl::RangeTestAndSet(w.data(), 64, 64));
  EXPECT_EQ(tl::FindFirstSet(w.data(), 10, 10), tl::kNpos);

  tl::RangeSet(w.data(), 0, 192);  // exactly three full words
  EXPECT_EQ(w, std::vector<std::uint64_t>(3, ~std::uint64_t{0}));
  tl::RangeClear(w.data(), 64, 128);  // clear the exact middle word
  EXPECT_EQ(w[0], ~std::uint64_t{0});
  EXPECT_EQ(w[1], 0u);
  EXPECT_EQ(w[2], ~std::uint64_t{0});
  EXPECT_EQ(tl::FirstFitGap(w.data(), 192, 0, 64), 64u);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 192, 0, 65), tl::kNpos);
}

TEST(TimelineTest, SingleBitStraddlesNoWord) {
  std::vector<std::uint64_t> w(2, 0);
  tl::RangeSet(w.data(), 63, 65);  // straddles the 0/1 word boundary
  EXPECT_EQ(w[0], std::uint64_t{1} << 63);
  EXPECT_EQ(w[1], std::uint64_t{1});
  EXPECT_TRUE(tl::RangeAny(w.data(), 64, 128));
  EXPECT_FALSE(tl::RangeAny(w.data(), 65, 128));
  EXPECT_EQ(tl::FindFirstSet(w.data(), 0, 128), 63u);
  EXPECT_EQ(tl::FindFirstSet(w.data(), 64, 128), 64u);
}

TEST(TimelineTest, FirstFitGapZeroLength) {
  std::vector<std::uint64_t> w(1, ~std::uint64_t{0});
  EXPECT_EQ(tl::FirstFitGap(w.data(), 64, 10, 0), 10u);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 64, 64, 0), 64u);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 64, 65, 0), tl::kNpos);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 64, 0, 1), tl::kNpos);
}

TEST(TimelineTest, BitTimelineWrapper) {
  tl::BitTimeline t;
  t.ResizeAndClear(130);
  EXPECT_EQ(t.NumBits(), 130u);
  EXPECT_EQ(t.NumWords(), 3u);
  EXPECT_FALSE(t.TestAndSet(10, 70));
  EXPECT_TRUE(t.TestAndSet(69, 71));  // bit 69/70 already occupied? 69 yes
  EXPECT_TRUE(t.Any(0, 130));
  EXPECT_EQ(t.FirstFit(0, 10), 0u);
  EXPECT_EQ(t.FirstFit(5, 10), 71u);
  t.ClearAll();
  EXPECT_FALSE(t.Any(0, 130));
}

}  // namespace
}  // namespace resched
