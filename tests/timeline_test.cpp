// Differential property sweep for the word-packed timeline kernels
// (util/timeline.hpp): every kernel must agree bit-for-bit with its
// one-bit-at-a-time reference in timeline::scalar across randomized
// interval sets, with deliberate pressure on word boundaries (indices
// near multiples of 64) and zero-length ranges.
//
// The sweep runs once per simd dispatch backend reachable on the build
// machine (forced via simd::SetBackend, the same mechanism as the
// RESCHED_SIMD env override), so the AVX2/NEON variants are held to the
// same oracle as the portable word loops. GapIndex and the GapCursor
// resume overloads get their own differential sections.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/timeline.hpp"

namespace resched {
namespace {

namespace tl = resched::timeline;

/// Every dispatch backend this build + machine can execute.
std::vector<simd::Backend> ReachableBackends() {
  std::vector<simd::Backend> backends{simd::Backend::kScalar};
  if (simd::Supported(simd::Backend::kAvx2)) {
    backends.push_back(simd::Backend::kAvx2);
  }
  if (simd::Supported(simd::Backend::kNeon)) {
    backends.push_back(simd::Backend::kNeon);
  }
  return backends;
}

/// Forces a backend for the test body and restores the previous one.
class ScopedBackend {
 public:
  explicit ScopedBackend(simd::Backend b) : prev_(simd::ActiveBackend()) {
    simd::SetBackend(b);
  }
  ~ScopedBackend() { simd::SetBackend(prev_); }

 private:
  simd::Backend prev_;
};

/// Draws an index biased toward word boundaries: half the time a uniform
/// index, half the time a multiple of 64 plus a small offset in [-2, 2].
std::size_t BoundaryBiasedIndex(Rng& rng, std::size_t num_bits) {
  if (rng.UniformInt(0, 1) == 0) {
    return static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(num_bits)));
  }
  const auto words = static_cast<std::int64_t>(num_bits / 64);
  const std::int64_t base = 64 * rng.UniformInt(0, words);
  const std::int64_t off = rng.UniformInt(-2, 2);
  const std::int64_t i = base + off;
  if (i < 0) return 0;
  if (i > static_cast<std::int64_t>(num_bits)) return num_bits;
  return static_cast<std::size_t>(i);
}

/// Random [begin, end) with begin <= end; occasionally zero-length.
std::pair<std::size_t, std::size_t> RandomRange(Rng& rng,
                                                std::size_t num_bits) {
  std::size_t a = BoundaryBiasedIndex(rng, num_bits);
  if (rng.UniformInt(0, 9) == 0) return {a, a};  // zero-length
  std::size_t b = BoundaryBiasedIndex(rng, num_bits);
  if (a > b) std::swap(a, b);
  return {a, b};
}

class TimelineDifferentialSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineDifferentialSweep, KernelsMatchScalarReference) {
  for (const simd::Backend backend : ReachableBackends()) {
    SCOPED_TRACE(simd::BackendName(backend));
    ScopedBackend guard(backend);

    Rng rng(GetParam());
    const auto num_bits = static_cast<std::size_t>(rng.UniformInt(1, 700));
    const std::size_t words = tl::WordsFor(num_bits);

    std::vector<std::uint64_t> fast(words, 0);
    std::vector<std::uint64_t> ref(words, 0);

    for (int step = 0; step < 400; ++step) {
      const auto [begin, end] = RandomRange(rng, num_bits);
      switch (rng.UniformInt(0, 7)) {
        case 0: {
          tl::RangeSet(fast.data(), begin, end);
          tl::scalar::RangeSet(ref.data(), begin, end);
          break;
        }
        case 1: {
          tl::RangeClear(fast.data(), begin, end);
          tl::scalar::RangeClear(ref.data(), begin, end);
          break;
        }
        case 2: {
          EXPECT_EQ(tl::RangeAny(fast.data(), begin, end),
                    tl::scalar::RangeAny(ref.data(), begin, end))
              << "RangeAny [" << begin << ", " << end << ")";
          break;
        }
        case 3: {
          EXPECT_EQ(tl::RangeTestAndSet(fast.data(), begin, end),
                    tl::scalar::RangeTestAndSet(ref.data(), begin, end))
              << "RangeTestAndSet [" << begin << ", " << end << ")";
          break;
        }
        case 4: {
          EXPECT_EQ(tl::FindFirstSet(fast.data(), begin, end),
                    tl::scalar::FindFirstSet(ref.data(), begin, end))
              << "FindFirstSet [" << begin << ", " << end << ")";
          break;
        }
        case 5: {
          const auto len =
              static_cast<std::size_t>(rng.UniformInt(0, 130));
          EXPECT_EQ(tl::FirstFitGap(fast.data(), num_bits, begin, len),
                    tl::scalar::FirstFitGap(ref.data(), num_bits, begin, len))
              << "FirstFitGap from=" << begin << " len=" << len;
          break;
        }
        case 6: {
          EXPECT_EQ(tl::FindLastSet(fast.data(), begin, end),
                    tl::scalar::FindLastSet(ref.data(), begin, end))
              << "FindLastSet [" << begin << ", " << end << ")";
          break;
        }
        case 7: {
          EXPECT_EQ(tl::RangeCount(fast.data(), begin, end),
                    tl::scalar::RangeCount(ref.data(), begin, end))
              << "RangeCount [" << begin << ", " << end << ")";
          break;
        }
      }
      ASSERT_EQ(fast, ref) << "word images diverged after step " << step;
    }

    // AnyIntersect / OrInto against a second randomized set.
    std::vector<std::uint64_t> other(words, 0);
    for (int i = 0; i < 20; ++i) {
      const auto [begin, end] = RandomRange(rng, num_bits);
      tl::RangeSet(other.data(), begin, end);
    }
    EXPECT_EQ(tl::AnyIntersect(fast.data(), other.data(), words),
              tl::scalar::AnyIntersect(ref.data(), other.data(), words));
    std::vector<std::uint64_t> or_fast = fast;
    std::vector<std::uint64_t> or_ref = ref;
    tl::OrInto(or_fast.data(), other.data(), words);
    tl::scalar::OrInto(or_ref.data(), other.data(), words);
    EXPECT_EQ(or_fast, or_ref);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineDifferentialSweep,
                         ::testing::Range<std::uint64_t>(1, 40));

// Set-only mutation sweep: the GapIndex (prefix-popcount) and the
// GapCursor resume overloads must agree with the plain-words kernels and
// the one-bit oracle under interleaved Set / probe traffic. Mutation is
// set-only because that is the GapCursor soundness precondition (a
// fully-set prefix can only grow).
class GapIndexDifferentialSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GapIndexDifferentialSweep, GapIndexAndCursorsMatchNaiveScan) {
  for (const simd::Backend backend : ReachableBackends()) {
    SCOPED_TRACE(simd::BackendName(backend));
    ScopedBackend guard(backend);

    Rng rng(GetParam() * 7919);
    const auto num_bits = static_cast<std::size_t>(rng.UniformInt(1, 900));
    const std::size_t words = tl::WordsFor(num_bits);

    tl::GapIndex index;
    index.ResizeAndClear(num_bits);
    std::vector<std::uint64_t> ref(words, 0);
    tl::GapCursor cursor;        // shared across probes; set-only axis
    tl::GapCursor index_cursor;  // independent cursor for GapIndex probes

    for (int step = 0; step < 300; ++step) {
      switch (rng.UniformInt(0, 4)) {
        case 0: {  // set-only mutation
          const auto [begin, end] = RandomRange(rng, num_bits);
          index.Set(begin, end);
          tl::scalar::RangeSet(ref.data(), begin, end);
          break;
        }
        case 1: {  // O(1) population count vs naive
          const auto [begin, end] = RandomRange(rng, num_bits);
          EXPECT_EQ(index.Count(begin, end),
                    tl::scalar::RangeCount(ref.data(), begin, end))
              << "Count [" << begin << ", " << end << ")";
          EXPECT_EQ(index.AnySet(begin, end),
                    tl::scalar::RangeAny(ref.data(), begin, end))
              << "AnySet [" << begin << ", " << end << ")";
          break;
        }
        case 2: {  // FirstGap with and without cursor vs naive fit scan
          const std::size_t from = BoundaryBiasedIndex(rng, num_bits);
          const auto len = static_cast<std::size_t>(rng.UniformInt(0, 140));
          const std::size_t want =
              tl::scalar::FirstFitGap(ref.data(), num_bits, from, len);
          EXPECT_EQ(index.FirstGap(from, len), want)
              << "FirstGap from=" << from << " len=" << len;
          EXPECT_EQ(index.FirstGap(from, len, &index_cursor), want)
              << "FirstGap+cursor from=" << from << " len=" << len;
          break;
        }
        case 3: {  // word-kernel cursor overload vs the cursor-less kernel
          const std::size_t from = BoundaryBiasedIndex(rng, num_bits);
          const auto len = static_cast<std::size_t>(rng.UniformInt(0, 140));
          EXPECT_EQ(
              tl::FirstFitGap(ref.data(), num_bits, from, len, &cursor),
              tl::FirstFitGap(ref.data(), num_bits, from, len))
              << "FirstFitGap cursor from=" << from << " len=" << len;
          break;
        }
        case 4: {  // index words mirror the reference image exactly
          ASSERT_EQ(std::vector<std::uint64_t>(
                        index.words(), index.words() + words),
                    ref)
              << "GapIndex word image diverged at step " << step;
          break;
        }
      }
      // The fully-set-prefix invariant: every bit below the cursor is set.
      ASSERT_LE(cursor.head_full_bits, num_bits);
      if (cursor.head_full_bits > 0) {
        ASSERT_EQ(tl::scalar::RangeCount(ref.data(), 0, cursor.head_full_bits),
                  cursor.head_full_bits)
            << "cursor claims unset bits are a full prefix";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapIndexDifferentialSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

// ------------------------------------------------- deterministic edges

TEST(TimelineTest, EmptyAndFullWordRanges) {
  std::vector<std::uint64_t> w(3, 0);
  tl::RangeSet(w.data(), 0, 0);
  EXPECT_EQ(w, std::vector<std::uint64_t>(3, 0));
  EXPECT_FALSE(tl::RangeAny(w.data(), 0, 0));
  EXPECT_FALSE(tl::RangeTestAndSet(w.data(), 64, 64));
  EXPECT_EQ(tl::FindFirstSet(w.data(), 10, 10), tl::kNpos);

  tl::RangeSet(w.data(), 0, 192);  // exactly three full words
  EXPECT_EQ(w, std::vector<std::uint64_t>(3, ~std::uint64_t{0}));
  tl::RangeClear(w.data(), 64, 128);  // clear the exact middle word
  EXPECT_EQ(w[0], ~std::uint64_t{0});
  EXPECT_EQ(w[1], 0u);
  EXPECT_EQ(w[2], ~std::uint64_t{0});
  EXPECT_EQ(tl::FirstFitGap(w.data(), 192, 0, 64), 64u);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 192, 0, 65), tl::kNpos);
}

TEST(TimelineTest, SingleBitStraddlesNoWord) {
  std::vector<std::uint64_t> w(2, 0);
  tl::RangeSet(w.data(), 63, 65);  // straddles the 0/1 word boundary
  EXPECT_EQ(w[0], std::uint64_t{1} << 63);
  EXPECT_EQ(w[1], std::uint64_t{1});
  EXPECT_TRUE(tl::RangeAny(w.data(), 64, 128));
  EXPECT_FALSE(tl::RangeAny(w.data(), 65, 128));
  EXPECT_EQ(tl::FindFirstSet(w.data(), 0, 128), 63u);
  EXPECT_EQ(tl::FindFirstSet(w.data(), 64, 128), 64u);
}

TEST(TimelineTest, FirstFitGapZeroLength) {
  std::vector<std::uint64_t> w(1, ~std::uint64_t{0});
  EXPECT_EQ(tl::FirstFitGap(w.data(), 64, 10, 0), 10u);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 64, 64, 0), 64u);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 64, 65, 0), tl::kNpos);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 64, 0, 1), tl::kNpos);
}

// Deterministic unaligned spans long enough to hit the dispatched interior
// path (>= kDispatchMinWords interior words) on every reachable backend,
// with begin/end straddling word boundaries by +/- 1 bit.
TEST(TimelineTest, DispatchedInteriorUnalignedEdges) {
  constexpr std::size_t kBits = 8 * 64;
  for (const simd::Backend backend : ReachableBackends()) {
    SCOPED_TRACE(simd::BackendName(backend));
    ScopedBackend guard(backend);
    for (const std::size_t begin : {0u, 1u, 63u, 64u, 65u, 127u, 129u}) {
      for (const std::size_t end : {319u, 320u, 321u, 447u, 449u, 511u, 512u}) {
        if (begin >= end) continue;
        std::vector<std::uint64_t> fast(8, 0), ref(8, 0);
        tl::RangeSet(fast.data(), begin, end);
        tl::scalar::RangeSet(ref.data(), begin, end);
        ASSERT_EQ(fast, ref) << "RangeSet [" << begin << ", " << end << ")";
        EXPECT_EQ(tl::FindFirstSet(fast.data(), 0, kBits), begin);
        EXPECT_EQ(tl::FindLastSet(fast.data(), 0, kBits), end - 1);
        EXPECT_EQ(tl::RangeCount(fast.data(), 0, kBits), end - begin);
        EXPECT_TRUE(tl::RangeAny(fast.data(), begin, end));
        EXPECT_FALSE(tl::RangeAny(fast.data(), 0, begin));
        EXPECT_FALSE(tl::RangeAny(fast.data(), end, kBits));
        tl::RangeClear(fast.data(), begin, end);
        ASSERT_EQ(fast, std::vector<std::uint64_t>(8, 0))
            << "RangeClear [" << begin << ", " << end << ")";
      }
    }
  }
}

// A stale cursor must never change the result: probes below the cached
// fully-set prefix still return exactly what the cursor-less kernel does.
TEST(TimelineTest, GapCursorProbesBelowPrefixAreExact) {
  std::vector<std::uint64_t> w(4, 0);
  tl::RangeSet(w.data(), 0, 100);  // fully-set prefix of 100 bits
  tl::GapCursor cursor;
  // Warm the cursor past the prefix.
  EXPECT_EQ(tl::FirstFitGap(w.data(), 256, 0, 5, &cursor), 100u);
  EXPECT_GE(cursor.head_full_bits, 100u);
  // Zero-length probes from inside the prefix must keep returning `from`.
  EXPECT_EQ(tl::FirstFitGap(w.data(), 256, 7, 0, &cursor), 7u);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 256, 256, 0, &cursor), 256u);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 256, 257, 0, &cursor), tl::kNpos);
  // Non-zero probes from inside the prefix jump to the real gap.
  EXPECT_EQ(tl::FirstFitGap(w.data(), 256, 3, 1, &cursor), 100u);
  // Saturated axis: cursor reaches num_bits, probes keep failing.
  tl::RangeSet(w.data(), 100, 256);
  tl::GapCursor full;
  EXPECT_EQ(tl::FirstFitGap(w.data(), 256, 0, 1, &full), tl::kNpos);
  EXPECT_EQ(full.head_full_bits, 256u);
  EXPECT_EQ(tl::FirstFitGap(w.data(), 256, 0, 1, &full), tl::kNpos);
}

TEST(TimelineTest, GapIndexDeterministicEdges) {
  tl::GapIndex index;
  index.ResizeAndClear(192);
  EXPECT_EQ(index.NumBits(), 192u);
  EXPECT_EQ(index.Count(0, 192), 0u);
  EXPECT_EQ(index.FirstGap(0, 192), 0u);
  EXPECT_EQ(index.FirstGap(0, 193), tl::kNpos);
  index.Set(63, 65);  // straddle the 0/1 word boundary
  index.Set(63, 65);  // idempotent: prefix must not double-count
  EXPECT_EQ(index.Count(0, 192), 2u);
  EXPECT_EQ(index.Count(64, 192), 1u);
  EXPECT_TRUE(index.AnySet(0, 64));
  EXPECT_FALSE(index.AnySet(65, 192));
  EXPECT_EQ(index.FirstGap(0, 63), 0u);
  EXPECT_EQ(index.FirstGap(0, 64), 65u);
  EXPECT_EQ(index.FirstGap(64, 1), 65u);
  index.ClearAll();
  EXPECT_EQ(index.Count(0, 192), 0u);
  EXPECT_EQ(index.FirstGap(10, 100), 10u);
}

TEST(TimelineTest, BitTimelineWrapper) {
  tl::BitTimeline t;
  t.ResizeAndClear(130);
  EXPECT_EQ(t.NumBits(), 130u);
  EXPECT_EQ(t.NumWords(), 3u);
  EXPECT_FALSE(t.TestAndSet(10, 70));
  EXPECT_TRUE(t.TestAndSet(69, 71));  // bit 69/70 already occupied? 69 yes
  EXPECT_TRUE(t.Any(0, 130));
  EXPECT_EQ(t.FirstFit(0, 10), 0u);
  EXPECT_EQ(t.FirstFit(5, 10), 71u);
  t.ClearAll();
  EXPECT_FALSE(t.Any(0, 130));
}

}  // namespace
}  // namespace resched
