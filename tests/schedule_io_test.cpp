// Tests for schedule JSON serialization and the SVG renderers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/pa_scheduler.hpp"
#include "io/schedule_io.hpp"
#include "sched/svg.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

Instance MakeInstance(std::uint64_t seed = 7) {
  GeneratorOptions gen;
  gen.num_tasks = 18;
  return GenerateInstance(MakeZedBoard(), gen, seed, "sio");
}

bool SchedulesEqual(const Schedule& a, const Schedule& b) {
  if (a.makespan != b.makespan) return false;
  if (a.task_slots.size() != b.task_slots.size()) return false;
  for (std::size_t t = 0; t < a.task_slots.size(); ++t) {
    const TaskSlot& x = a.task_slots[t];
    const TaskSlot& y = b.task_slots[t];
    if (x.task != y.task || x.impl_index != y.impl_index ||
        x.target != y.target || x.target_index != y.target_index ||
        x.start != y.start || x.end != y.end) {
      return false;
    }
  }
  if (a.regions.size() != b.regions.size()) return false;
  for (std::size_t s = 0; s < a.regions.size(); ++s) {
    if (!(a.regions[s].res == b.regions[s].res)) return false;
    if (a.regions[s].reconf_time != b.regions[s].reconf_time) return false;
    if (a.regions[s].tasks != b.regions[s].tasks) return false;
  }
  if (a.reconfigurations.size() != b.reconfigurations.size()) return false;
  for (std::size_t i = 0; i < a.reconfigurations.size(); ++i) {
    const ReconfSlot& x = a.reconfigurations[i];
    const ReconfSlot& y = b.reconfigurations[i];
    if (x.region != y.region || x.loads_task != y.loads_task ||
        x.start != y.start || x.end != y.end) {
      return false;
    }
  }
  return a.floorplan.size() == b.floorplan.size();
}

TEST(ScheduleIoTest, RoundTripPaSchedule) {
  const Instance inst = MakeInstance();
  const Schedule s = SchedulePa(inst);
  const Schedule back = ScheduleFromString(inst, ScheduleToString(inst, s));
  EXPECT_TRUE(SchedulesEqual(s, back));
  // The deserialized schedule still validates (including the floorplan).
  ValidationOptions opt;
  opt.require_floorplan = true;
  EXPECT_TRUE(ValidateSchedule(inst, back, opt).ok());
}

TEST(ScheduleIoTest, FileRoundTrip) {
  const Instance inst = MakeInstance(9);
  const Schedule s = SchedulePa(inst);
  const std::string path =
      (std::filesystem::temp_directory_path() / "resched_sched_test.json")
          .string();
  SaveSchedule(inst, s, path);
  const Schedule back = LoadSchedule(inst, path);
  EXPECT_TRUE(SchedulesEqual(s, back));
  std::remove(path.c_str());
}

TEST(ScheduleIoTest, RejectsWrongFormat) {
  const Instance inst = MakeInstance();
  EXPECT_THROW((void)ScheduleFromString(inst, R"({"format": "x"})"),
               InstanceError);
}

TEST(ScheduleIoTest, RejectsTaskCountMismatch) {
  const Instance inst = MakeInstance();
  const Schedule s = SchedulePa(inst);
  JsonValue json = ScheduleToJson(inst, s);
  json.AsObject()["tasks"].AsArray().pop_back();
  EXPECT_THROW((void)ScheduleFromJson(inst, json), InstanceError);
}

TEST(ScheduleIoTest, RejectsUnknownTarget) {
  const Instance inst = MakeInstance();
  const Schedule s = SchedulePa(inst);
  JsonValue json = ScheduleToJson(inst, s);
  json.AsObject()["tasks"].AsArray()[0].AsObject()["target"] =
      JsonValue("gpu");
  EXPECT_THROW((void)ScheduleFromJson(inst, json), InstanceError);
}

TEST(ScheduleIoTest, TamperedScheduleFailsValidation) {
  // The full pipeline catches manual edits that break constraints.
  const Instance inst = MakeInstance();
  const Schedule s = SchedulePa(inst);
  JsonValue json = ScheduleToJson(inst, s);
  auto& slot0 = json.AsObject()["tasks"].AsArray()[0].AsObject();
  slot0["start"] = JsonValue(slot0.at("start").AsInt() + 1);
  const Schedule tampered = ScheduleFromJson(inst, json);
  EXPECT_FALSE(ValidateSchedule(inst, tampered).ok());
}

// ---------------------------------------------------------------- svg

TEST(SvgTest, GanttSvgIsWellFormedish) {
  const Instance inst = MakeInstance();
  const Schedule s = SchedulePa(inst);
  const std::string svg = GanttSvg(inst, s);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One bar per task slot at least.
  std::size_t rects = 0;
  for (std::size_t pos = 0; (pos = svg.find("<rect", pos)) != std::string::npos;
       ++pos) {
    ++rects;
  }
  EXPECT_GE(rects, inst.graph.NumTasks());
  // Task names appear as titles.
  EXPECT_NE(svg.find(inst.graph.GetTask(0).name), std::string::npos);
}

TEST(SvgTest, GanttSvgEscapesXml) {
  TaskGraph g;
  const TaskId t = g.AddTask("a<b>&\"c");
  g.AddImpl(t, testing::SwImpl(100));
  Instance inst{"esc", testing::MakeSmallPlatform(), std::move(g)};
  const Schedule s = SchedulePa(inst);
  const std::string svg = GanttSvg(inst, s);
  EXPECT_EQ(svg.find("a<b>"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;&quot;c"), std::string::npos);
}

TEST(SvgTest, FloorplanSvgShowsRegions) {
  const Instance inst = MakeInstance();
  const Schedule s = SchedulePa(inst);
  ASSERT_FALSE(s.floorplan.empty());
  const std::string svg = FloorplanSvg(inst, s);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("rr0"), std::string::npos);
  EXPECT_NE(svg.find("CLB"), std::string::npos);
}

TEST(SvgTest, EmptyScheduleStillRenders) {
  TaskGraph g;
  const TaskId t = g.AddTask("only");
  g.AddImpl(t, testing::SwImpl(10));
  Instance inst{"empty", testing::MakeSmallPlatform(), std::move(g)};
  const Schedule s = SchedulePa(inst);
  EXPECT_NE(GanttSvg(inst, s).find("</svg>"), std::string::npos);
  EXPECT_NE(FloorplanSvg(inst, s).find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace resched
