// Differential tests against the exact reference scheduler: on tiny
// instances a completed exact search bounds the whole IS-k family from
// below, pins hand-computable optima, and frames the heuristics.
#include <gtest/gtest.h>

#include "baseline/exact.hpp"
#include "baseline/fixed_grid.hpp"
#include "baseline/isk_scheduler.hpp"
#include "baseline/reference.hpp"
#include "core/pa_scheduler.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::MakeSmallPlatform;
using testing::SwImpl;

Instance TinyInstance(std::size_t n, std::uint64_t seed) {
  GeneratorOptions gen;
  gen.num_tasks = n;
  gen.num_hw_impls = 2;  // keep the exact search tractable
  return GenerateInstance(MakeSmallPlatform(), gen, seed, "tiny");
}

TEST(ExactTest, SingleTaskOptimum) {
  TaskGraph g;
  const TaskId t = g.AddTask("t");
  g.AddImpl(t, SwImpl(1000));
  g.AddImpl(t, HwImpl(123, 300));
  Instance inst{"one", MakeSmallPlatform(), std::move(g)};
  const ExactResult result = ScheduleExact(inst);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.schedule.makespan, 123);
  EXPECT_TRUE(ValidateSchedule(inst, result.schedule).ok());
}

TEST(ExactTest, HandSolvableParallelPair) {
  // Two independent tasks, each HW 1000us/1000 CLB; device fits both
  // regions -> optimal makespan 1000 (fully parallel).
  TaskGraph g = testing::MakeIndependent(2, 1000, 1000, 9000);
  Instance inst{"pair", MakeSmallPlatform(), std::move(g)};
  const ExactResult result = ScheduleExact(inst);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.schedule.makespan, 1000);
}

TEST(ExactTest, RespectsLowerBound) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Instance inst = TinyInstance(5, seed);
    const ExactResult result = ScheduleExact(inst);
    ASSERT_TRUE(result.complete) << "nodes=" << result.nodes;
    EXPECT_TRUE(ValidateSchedule(inst, result.schedule).ok());
    EXPECT_GE(result.schedule.makespan, CriticalPathLowerBound(inst));
  }
}

class ExactDominanceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactDominanceSweep, ExactBoundsIskFamily) {
  const Instance inst = TinyInstance(6, GetParam());
  ExactOptions opt;
  opt.max_nodes = 0;  // exhaustive
  opt.time_budget_seconds = 30.0;
  const ExactResult exact = ScheduleExact(inst, opt);
  ASSERT_TRUE(exact.complete);
  ASSERT_TRUE(ValidateSchedule(inst, exact.schedule).ok())
      << ValidateSchedule(inst, exact.schedule).Summary();

  IskOptions is1;
  is1.k = 1;
  is1.run_floorplan = false;
  const Schedule s1 = ScheduleIsk(inst, is1);
  EXPECT_LE(exact.schedule.makespan, s1.makespan);

  IskOptions is5 = is1;
  is5.k = 5;
  is5.node_budget = 100000;
  const Schedule s5 = ScheduleIsk(inst, is5);
  EXPECT_LE(exact.schedule.makespan, s5.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactDominanceSweep,
                         ::testing::Range<std::uint64_t>(10, 18));

TEST(ExactTest, HeuristicsWithinFactorOfExactOnTinySuite) {
  // PA is not formally dominated by the exact model, but on tiny instances
  // it should stay within a modest factor of it on average.
  double pa_total = 0.0;
  double exact_total = 0.0;
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    const Instance inst = TinyInstance(6, seed);
    ExactOptions opt;
    opt.max_nodes = 0;
    const ExactResult exact = ScheduleExact(inst, opt);
    ASSERT_TRUE(exact.complete);
    PaOptions pa_opt;
    pa_opt.run_floorplan = false;
    const Schedule pa = SchedulePa(inst, pa_opt);
    pa_total += static_cast<double>(pa.makespan);
    exact_total += static_cast<double>(exact.schedule.makespan);
  }
  EXPECT_LE(pa_total, 1.6 * exact_total);
}

TEST(ExactTest, NodeBudgetTruncatesGracefully) {
  const Instance inst = TinyInstance(8, 99);
  ExactOptions opt;
  opt.max_nodes = 50;  // absurdly small
  const ExactResult result = ScheduleExact(inst, opt);
  // Even truncated, the incumbent must be a valid complete schedule...
  // unless no leaf was reached; then Freeze() would have thrown. With 50
  // nodes on n=8 a leaf may not be reached — accept either outcome but
  // never an invalid schedule.
  if (!result.schedule.task_slots.empty()) {
    EXPECT_TRUE(ValidateSchedule(inst, result.schedule).ok());
  }
  EXPECT_FALSE(result.complete);
}

TEST(ExactTest, ExactUsesModuleReuseWhenProfitable) {
  // Chain of same-module tasks: with reuse the optimum runs back-to-back
  // in one region with zero reconfigurations.
  TaskGraph g;
  for (std::size_t i = 0; i < 4; ++i) {
    const TaskId t = g.AddTask("m" + std::to_string(i));
    g.AddImpl(t, SwImpl(50000));
    g.AddImpl(t, HwImpl(1000, 2500, 0, 0, /*module=*/5));
    if (i > 0) g.AddEdge(static_cast<TaskId>(i - 1), t);
  }
  Instance inst{"reuse", MakeSmallPlatform(), std::move(g)};
  ExactOptions opt;
  opt.max_nodes = 0;
  const ExactResult result = ScheduleExact(inst, opt);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.schedule.makespan, 4000);
  EXPECT_TRUE(result.schedule.reconfigurations.empty());
}

}  // namespace
}  // namespace resched
