// Tests for the schedule quality metrics.
#include <gtest/gtest.h>

#include "core/pa_scheduler.hpp"
#include "sched/metrics.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::MakeSmallPlatform;
using testing::SwImpl;

TEST(MetricsTest, SingleSoftwareTask) {
  TaskGraph g;
  const TaskId t = g.AddTask("t");
  g.AddImpl(t, SwImpl(1000));
  Instance inst{"m", MakeSmallPlatform(2), std::move(g)};
  const Schedule s = SchedulePa(inst);
  const ScheduleMetrics m = ComputeMetrics(inst, s);
  EXPECT_EQ(m.makespan, 1000);
  EXPECT_EQ(m.num_tasks, 1u);
  EXPECT_EQ(m.hw_tasks, 0u);
  EXPECT_DOUBLE_EQ(m.hw_ratio, 0.0);
  EXPECT_EQ(m.num_regions, 0u);
  EXPECT_EQ(m.total_task_time, 1000);
  EXPECT_EQ(m.total_reconf_time, 0);
  // One of two cores busy the whole time.
  EXPECT_NEAR(m.avg_core_utilization, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(m.avg_parallelism, 1.0);
  EXPECT_EQ(m.peak_parallelism, 1u);
}

TEST(MetricsTest, ParallelHardwarePair) {
  TaskGraph g = testing::MakeIndependent(2, 1000, 500, 9000);
  Instance inst{"p", MakeSmallPlatform(), std::move(g)};
  const Schedule s = SchedulePa(inst);
  ASSERT_EQ(s.NumHardwareTasks(), 2u);
  const ScheduleMetrics m = ComputeMetrics(inst, s);
  EXPECT_EQ(m.makespan, 1000);
  EXPECT_DOUBLE_EQ(m.hw_ratio, 1.0);
  EXPECT_EQ(m.peak_parallelism, 2u);
  EXPECT_DOUBLE_EQ(m.avg_parallelism, 2.0);
  // Both regions fully busy.
  EXPECT_NEAR(m.avg_region_utilization, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.reconf_overhead, 0.0);
}

TEST(MetricsTest, ChainWithReconfigurationsAccountsGaps) {
  TaskGraph g = testing::MakeChain(6, 3000, 1400, 60000);
  Instance inst{"c", MakeSmallPlatform(), std::move(g)};
  const Schedule s = SchedulePa(inst);
  ASSERT_FALSE(s.reconfigurations.empty());
  const ScheduleMetrics m = ComputeMetrics(inst, s);
  EXPECT_GT(m.total_reconf_time, 0);
  EXPECT_GT(m.reconf_overhead, 0.0);
  EXPECT_LT(m.reconf_overhead, 1.0);
  EXPECT_GT(m.controller_utilization, 0.0);
  // Consecutive region tasks are separated at least by the reconf time.
  EXPECT_GT(m.avg_region_gap, 0.0);
}

TEST(MetricsTest, CapacityUtilizationBounded) {
  GeneratorOptions gen;
  gen.num_tasks = 30;
  const Instance inst = GenerateInstance(MakeZedBoard(), gen, 3, "cap");
  const Schedule s = SchedulePa(inst);
  const ScheduleMetrics m = ComputeMetrics(inst, s);
  EXPECT_GE(m.capacity_utilization, 0.0);
  EXPECT_LE(m.capacity_utilization, 1.0);
  EXPECT_GE(m.avg_parallelism, 1.0);
  EXPECT_GE(static_cast<double>(m.peak_parallelism), m.avg_parallelism - 1.0);
}

TEST(MetricsTest, ToStringMentionsKeyNumbers) {
  GeneratorOptions gen;
  gen.num_tasks = 15;
  const Instance inst = GenerateInstance(MakeZedBoard(), gen, 5, "str");
  const Schedule s = SchedulePa(inst);
  const std::string text = ComputeMetrics(inst, s).ToString();
  EXPECT_NE(text.find("makespan"), std::string::npos);
  EXPECT_NE(text.find("regions"), std::string::npos);
  EXPECT_NE(text.find("parallelism"), std::string::npos);
}

}  // namespace
}  // namespace resched
