// Tests for periodic unrolling and new device presets.
#include <gtest/gtest.h>

#include "core/pa_scheduler.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "taskgraph/replicate.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::SwImpl;

// ---------------------------------------------------------------- presets

TEST(DevicePresetTest, NewPresetsHaveSaneCapacities) {
  const FpgaDevice z010 = MakeXc7z010();
  const FpgaDevice z020 = MakeXc7z020();
  const FpgaDevice k160 = MakeKintex7_160();
  const FpgaDevice zu9 = MakeZu9eg();
  EXPECT_LT(z010.Capacity()[0], z020.Capacity()[0]);
  EXPECT_LT(z020.Capacity()[0], k160.Capacity()[0]);
  EXPECT_LT(k160.Capacity()[0], zu9.Capacity()[0]);
  EXPECT_EQ(MakePynqZ1().NumProcessors(), 2u);
  EXPECT_EQ(MakeZcu102().NumProcessors(), 4u);
  EXPECT_EQ(MakeKintexPlatform().NumProcessors(), 4u);
}

TEST(DevicePresetTest, PaWorksOnEveryPreset) {
  GeneratorOptions gen;
  gen.num_tasks = 20;
  for (const Platform& p :
       {MakePynqZ1(), MakeZedBoard(), MakeKintexPlatform(), MakeZcu102()}) {
    const Instance inst = GenerateInstance(p, gen, 7, "preset");
    const Schedule s = SchedulePa(inst);
    EXPECT_TRUE(ValidateSchedule(inst, s).ok()) << p.Name();
  }
}

TEST(DevicePresetTest, BiggerFabricHostsMoreHardware) {
  GeneratorOptions gen;
  gen.num_tasks = 40;
  const Instance small = GenerateInstance(MakePynqZ1(), gen, 9, "s");
  const Instance big = GenerateInstance(MakeZcu102(), gen, 9, "b");
  const Schedule on_small = SchedulePa(small);
  const Schedule on_big = SchedulePa(big);
  EXPECT_GE(on_big.NumHardwareTasks(), on_small.NumHardwareTasks());
}

// ---------------------------------------------------------------- unroll

TaskGraph MakeStagePair() {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  const TaskId b = g.AddTask("b");
  g.AddEdge(a, b);
  g.SetEdgeData(a, b, 4096);
  g.AddImpl(a, SwImpl(5000));
  g.AddImpl(a, HwImpl(1000, 400));
  g.AddImpl(b, SwImpl(5000));
  g.AddImpl(b, HwImpl(1000, 300));
  return g;
}

TEST(UnrollTest, StructureOfUnrolledGraph) {
  const TaskGraph g = MakeStagePair();
  UnrollOptions opt;
  opt.frames = 3;
  const TaskGraph u = UnrollPeriodic(g, opt);
  ASSERT_EQ(u.NumTasks(), 6u);
  // Names carry the frame index.
  EXPECT_EQ(u.GetTask(0).name, "a@0");
  EXPECT_EQ(u.GetTask(3).name, "b@1");
  // Intra-frame edges with payloads.
  EXPECT_TRUE(u.HasEdge(0, 1));
  EXPECT_EQ(u.EdgeData(0, 1), 4096);
  EXPECT_TRUE(u.HasEdge(2, 3));
  // Inter-frame stage serialization a@0 -> a@1 -> a@2.
  EXPECT_TRUE(u.HasEdge(0, 2));
  EXPECT_TRUE(u.HasEdge(2, 4));
  EXPECT_FALSE(u.HasEdge(0, 4));  // only consecutive frames
  // No cross-frame data edges.
  EXPECT_FALSE(u.HasEdge(0, 3));
}

TEST(UnrollTest, CopiesShareModules) {
  const TaskGraph g = MakeStagePair();  // module_id == -1 originally
  UnrollOptions opt;
  opt.frames = 2;
  const TaskGraph u = UnrollPeriodic(g, opt);
  const Implementation& a0 = u.GetImpl(0, 1);
  const Implementation& a1 = u.GetImpl(2, 1);
  EXPECT_GE(a0.module_id, 0);
  EXPECT_EQ(a0.module_id, a1.module_id);
  // Different stages get different modules.
  EXPECT_NE(u.GetImpl(0, 1).module_id, u.GetImpl(1, 1).module_id);
}

TEST(UnrollTest, SharingCanBeDisabled) {
  UnrollOptions opt;
  opt.frames = 2;
  opt.share_modules_across_frames = false;
  const TaskGraph u = UnrollPeriodic(MakeStagePair(), opt);
  EXPECT_EQ(u.GetImpl(0, 1).module_id, -1);
}

TEST(UnrollTest, ExistingModuleIdsPreserved) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  g.AddImpl(a, SwImpl(100));
  g.AddImpl(a, HwImpl(50, 100, 0, 0, /*module=*/42));
  UnrollOptions opt;
  opt.frames = 2;
  const TaskGraph u = UnrollPeriodic(g, opt);
  EXPECT_EQ(u.GetImpl(0, 1).module_id, 42);
  EXPECT_EQ(u.GetImpl(1, 1).module_id, 42);
}

TEST(UnrollTest, SingleFrameIsIsomorphic) {
  const TaskGraph g = MakeStagePair();
  UnrollOptions opt;
  opt.frames = 1;
  const TaskGraph u = UnrollPeriodic(g, opt);
  EXPECT_EQ(u.NumTasks(), g.NumTasks());
  EXPECT_EQ(u.NumEdges(), g.NumEdges());
}

TEST(UnrollTest, UnrolledInstanceSchedulesValidly) {
  GeneratorOptions gen;
  gen.num_tasks = 15;
  const Instance base = GenerateInstance(MakeZedBoard(), gen, 21, "frame");
  UnrollOptions opt;
  opt.frames = 4;
  const Instance unrolled = UnrollPeriodic(base, opt);
  EXPECT_EQ(unrolled.graph.NumTasks(), 60u);
  const Schedule s = SchedulePa(unrolled);
  const ValidationResult r = ValidateSchedule(unrolled, s);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(UnrollTest, PipeliningImprovesThroughput) {
  // Per-frame initiation interval with 4 overlapped frames must beat
  // 1-frame latency (frames can overlap across regions/cores).
  GeneratorOptions gen;
  gen.num_tasks = 12;
  const Instance base = GenerateInstance(MakeZedBoard(), gen, 33, "tp");
  const Schedule single = SchedulePa(base);

  UnrollOptions opt;
  opt.frames = 4;
  const Instance unrolled = UnrollPeriodic(base, opt);
  PaOptions pa;
  pa.module_reuse = true;  // consecutive frames share bitstreams
  const Schedule pipelined = SchedulePa(unrolled, pa);
  ASSERT_TRUE(ValidateSchedule(unrolled, pipelined).ok());

  const double interval =
      ThroughputInterval(pipelined.makespan, opt.frames);
  EXPECT_LT(interval, static_cast<double>(single.makespan));
}

TEST(UnrollTest, ModuleReuseHelpsAcrossFrames) {
  GeneratorOptions gen;
  gen.num_tasks = 10;
  gen.clb_lo = 1500;  // big modules -> region sharing across frames matters
  gen.clb_hi = 3000;
  const Instance base = GenerateInstance(MakeZedBoard(), gen, 44, "mr");
  UnrollOptions opt;
  opt.frames = 3;
  const Instance unrolled = UnrollPeriodic(base, opt);

  PaOptions with;
  with.module_reuse = true;
  PaOptions without;
  without.module_reuse = false;
  const Schedule a = SchedulePa(unrolled, with);
  const Schedule b = SchedulePa(unrolled, without);
  ASSERT_TRUE(ValidateSchedule(unrolled, a).ok());
  ASSERT_TRUE(ValidateSchedule(unrolled, b).ok());
  EXPECT_LE(a.reconfigurations.size(), b.reconfigurations.size());
}

}  // namespace
}  // namespace resched
