// Tests for the PA-LS local-search variant and the kExplicit ordering hook.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/local_search.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

Instance MakeInstance(std::size_t n, std::uint64_t seed) {
  GeneratorOptions gen;
  gen.num_tasks = n;
  return GenerateInstance(MakeZedBoard(), gen, seed, "ls");
}

TEST(ExplicitOrderTest, ProducesValidSchedules) {
  const Instance inst = MakeInstance(25, 3);
  PaOptions opt;
  opt.ordering = NonCriticalOrder::kExplicit;
  // Reverse task-id order as an arbitrary permutation.
  for (TaskId t = static_cast<TaskId>(inst.graph.NumTasks()); t-- > 0;) {
    opt.explicit_order.push_back(t);
  }
  const Schedule s = SchedulePa(inst, opt);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
}

TEST(ExplicitOrderTest, EmptyOrderFallsBackToEfficiency) {
  const Instance inst = MakeInstance(20, 5);
  PaOptions explicit_empty;
  explicit_empty.ordering = NonCriticalOrder::kExplicit;
  PaOptions efficiency;
  const Schedule a = SchedulePa(inst, explicit_empty);
  const Schedule b = SchedulePa(inst, efficiency);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(ExplicitOrderTest, RejectsUnknownTaskIds) {
  const Instance inst = MakeInstance(5, 7);
  PaOptions opt;
  opt.ordering = NonCriticalOrder::kExplicit;
  opt.explicit_order = {99};
  EXPECT_THROW((void)SchedulePa(inst, opt), InternalError);
}

TEST(ExplicitOrderTest, OrderActuallyMatters) {
  // Across a few permutations, at least two distinct makespans arise on a
  // contended instance (otherwise the hook would be dead code).
  // Heavy contention (small fabric) so the region-definition order has
  // real consequences.
  GeneratorOptions gen;
  gen.num_tasks = 30;
  const Instance inst =
      GenerateInstance(testing::MakeSmallPlatform(), gen, 11, "contended");
  std::set<TimeT> seen;
  Rng rng(1);
  std::vector<TaskId> perm(inst.graph.NumTasks());
  std::iota(perm.begin(), perm.end(), TaskId{0});
  for (int i = 0; i < 16; ++i) {
    rng.Shuffle(perm);
    PaOptions opt;
    opt.ordering = NonCriticalOrder::kExplicit;
    opt.explicit_order = perm;
    opt.run_floorplan = false;
    seen.insert(SchedulePa(inst, opt).makespan);
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST(PaLsTest, RequiresSomeBound) {
  const Instance inst = MakeInstance(10, 1);
  PaLsOptions opt;
  opt.time_budget_seconds = 0.0;
  opt.max_iterations = 0;
  EXPECT_THROW((void)SchedulePaLs(inst, opt), InternalError);
}

TEST(PaLsTest, NeverWorseThanDeterministicPa) {
  for (const std::uint64_t seed : {3u, 13u, 23u}) {
    const Instance inst = MakeInstance(30, seed);
    const Schedule pa = SchedulePa(inst);
    PaLsOptions opt;
    opt.max_iterations = 40;
    opt.time_budget_seconds = 0.0;
    opt.seed = seed;
    const PaRResult result = SchedulePaLs(inst, opt);
    ASSERT_TRUE(result.found);
    EXPECT_LE(result.best.makespan, pa.makespan);
    EXPECT_TRUE(ValidateSchedule(inst, result.best).ok());
    EXPECT_EQ(result.best.algorithm, "PA-LS");
  }
}

TEST(PaLsTest, DeterministicForSeed) {
  const Instance inst = MakeInstance(20, 9);
  PaLsOptions opt;
  opt.max_iterations = 30;
  opt.time_budget_seconds = 0.0;
  opt.seed = 4;
  const PaRResult a = SchedulePaLs(inst, opt);
  const PaRResult b = SchedulePaLs(inst, opt);
  ASSERT_TRUE(a.found);
  EXPECT_EQ(a.best.makespan, b.best.makespan);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(PaLsTest, TraceIsMonotone) {
  const Instance inst = MakeInstance(30, 17);
  PaLsOptions opt;
  opt.max_iterations = 120;
  opt.time_budget_seconds = 0.0;
  opt.record_trace = true;
  const PaRResult result = SchedulePaLs(inst, opt);
  ASSERT_TRUE(result.found);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LT(result.trace[i].makespan, result.trace[i - 1].makespan);
  }
}

TEST(PaLsTest, RestartsAfterStall) {
  // With a tiny stall limit and many iterations, the search must keep
  // producing valid results (exercise the restart path).
  const Instance inst = MakeInstance(20, 19);
  PaLsOptions opt;
  opt.max_iterations = 100;
  opt.time_budget_seconds = 0.0;
  opt.stall_limit = 3;
  const PaRResult result = SchedulePaLs(inst, opt);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(ValidateSchedule(inst, result.best).ok());
  EXPECT_EQ(result.iterations, 100u);
}

}  // namespace
}  // namespace resched
