// White-box tests for the PA working state: implementation switching,
// region creation/assignment rules (slot-based CanHost semantics,
// serialization edges, reconfiguration gaps), capacity accounting and the
// Eq.-(6) estimate — all against the PR-4 PaContext/PaScratch split.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "core/pa_state.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace resched {
namespace {

using pa::PaContext;
using pa::PaScratch;
using testing::HwImpl;
using testing::MakeSmallPlatform;
using testing::SwImpl;

struct Fixture {
  Instance instance;
  PaOptions options;
  std::optional<PaContext> ctx;
  std::optional<PaScratch> scratch;

  Fixture() {
    TaskGraph g;
    // Chain a -> b, plus an independent c.
    const TaskId a = g.AddTask("a");
    const TaskId b = g.AddTask("b");
    const TaskId c = g.AddTask("c");
    g.AddEdge(a, b);
    for (const TaskId t : {a, b, c}) {
      g.AddImpl(t, SwImpl(20000));
      g.AddImpl(t, HwImpl(1000, 600, 0, 0, static_cast<std::int32_t>(t)));
    }
    instance = Instance{"fix", MakeSmallPlatform(), std::move(g)};
  }

  /// Builds the context/scratch pair against `cap` and switches every task
  /// to its hardware implementation (index 1).
  PaScratch& MakeState(const ResourceVec& cap) {
    ctx.emplace(instance, options);
    scratch.emplace(*ctx);
    scratch->Reset(cap);
    for (std::size_t t = 0; t < instance.graph.NumTasks(); ++t) {
      scratch->SetImpl(static_cast<TaskId>(t), 1);
    }
    return *scratch;
  }

  PaScratch& MakeState() {
    return MakeState(instance.platform.Device().Capacity());
  }
};

TEST(PaStateTest, SetImplUpdatesTiming) {
  Fixture f;
  PaScratch& state = f.MakeState();
  EXPECT_EQ(state.Timing().ExecTime(0), 1000);
  state.SetImpl(0, 0);  // software
  EXPECT_EQ(state.Timing().ExecTime(0), 20000);
  EXPECT_FALSE(state.ChosenIsHardware(0));
}

TEST(PaStateTest, CreateRegionTracksCapacity) {
  Fixture f;
  PaScratch& state = f.MakeState();
  EXPECT_TRUE(state.UsedCap().IsZero());
  const std::size_t r = state.CreateRegionFor(0);
  EXPECT_EQ(r, 0u);
  EXPECT_EQ(state.RegionOf(0), 0);
  EXPECT_EQ(state.UsedCap()[0], 600);
  EXPECT_EQ(state.Region(0).res[0], 600);
  EXPECT_GT(state.Region(0).reconf_time, 0);
}

TEST(PaStateTest, HasFreeCapacityAgainstAvail) {
  Fixture f;
  // Artificially small available capacity: only one 600-CLB region fits.
  PaScratch& state = f.MakeState(ResourceVec({700, 40, 60}));
  EXPECT_TRUE(state.HasFreeCapacity(state.ChosenImpl(0).res));
  state.CreateRegionFor(0);
  EXPECT_FALSE(state.HasFreeCapacity(state.ChosenImpl(1).res));
}

TEST(PaStateTest, ResetForgetsRegionsAndKeepsWorking) {
  Fixture f;
  PaScratch& state = f.MakeState();
  state.CreateRegionFor(0);
  state.AssignToRegion(0, 1);
  ASSERT_EQ(state.NumRegions(), 1u);

  // A restart must see a pristine scratch...
  state.Reset(f.instance.platform.Device().Capacity());
  EXPECT_EQ(state.NumRegions(), 0u);
  EXPECT_TRUE(state.UsedCap().IsZero());
  EXPECT_EQ(state.RegionOf(0), -1);
  EXPECT_EQ(state.ImplIndex(0), 0u);

  // ...and the second build must behave exactly like the first.
  for (TaskId t = 0; t < 3; ++t) state.SetImpl(t, 1);
  state.CreateRegionFor(0);
  EXPECT_EQ(state.RegionOf(0), 0);
  EXPECT_EQ(state.UsedCap()[0], 600);
}

TEST(PaStateTest, CanHostRequiresResourceFit) {
  Fixture f;
  f.instance.graph = TaskGraph();
  const TaskId a = f.instance.graph.AddTask("a");
  const TaskId b = f.instance.graph.AddTask("b");
  f.instance.graph.AddEdge(a, b);
  f.instance.graph.AddImpl(a, SwImpl(20000));
  f.instance.graph.AddImpl(a, HwImpl(1000, 400));
  f.instance.graph.AddImpl(b, SwImpl(20000));
  f.instance.graph.AddImpl(b, HwImpl(1000, 900));  // larger than a's region
  f.ctx.emplace(f.instance, f.options);
  f.scratch.emplace(*f.ctx);
  PaScratch& state = *f.scratch;
  state.SetImpl(a, 1);
  state.SetImpl(b, 1);
  state.CreateRegionFor(a);
  EXPECT_FALSE(state.CanHost(0, b, 1, false));
}

TEST(PaStateTest, CanHostChecksSlotDisjointness) {
  Fixture f;
  PaScratch& state = f.MakeState();
  state.CreateRegionFor(0);  // a occupies [0, 1000)
  // b (chain successor, slot [1000, 2000)) is slot-disjoint from a.
  EXPECT_TRUE(state.CanHost(0, 1, 1, /*require_reconf_room=*/false));
  // c (independent, slot [0, 1000)) overlaps a's slot.
  EXPECT_FALSE(state.CanHost(0, 2, 1, /*require_reconf_room=*/false));
}

TEST(PaStateTest, ReconfRoomRequirementIsStricter) {
  Fixture f;
  PaScratch& state = f.MakeState();
  state.CreateRegionFor(0);
  // b starts exactly when a ends: no room for a reconfiguration between.
  EXPECT_TRUE(state.CanHost(0, 1, 1, false));
  EXPECT_FALSE(state.CanHost(0, 1, 1, true));
}

TEST(PaStateTest, AssignToRegionSerializesWithGap) {
  Fixture f;
  PaScratch& state = f.MakeState();
  state.CreateRegionFor(0);
  const TimeT reconf = state.Region(0).reconf_time;
  state.AssignToRegion(0, 1);  // b joins a's region
  EXPECT_EQ(state.RegionOf(1), 0);
  ASSERT_EQ(state.Region(0).tasks.size(), 2u);
  EXPECT_EQ(state.Region(0).tasks[0], 0);
  EXPECT_EQ(state.Region(0).tasks[1], 1);
  // The ordering edge reserves the reconfiguration gap: b now starts at
  // end(a) + reconf.
  const TimeWindows& win = state.Timing().Windows();
  EXPECT_EQ(win.earliest_start[1], 1000 + reconf);
}

TEST(PaStateTest, ModuleReuseRemovesGap) {
  Fixture f;
  f.options.module_reuse = true;
  // Give a and b the same module id.
  f.instance.graph = TaskGraph();
  const TaskId a = f.instance.graph.AddTask("a");
  const TaskId b = f.instance.graph.AddTask("b");
  f.instance.graph.AddEdge(a, b);
  for (const TaskId t : {a, b}) {
    f.instance.graph.AddImpl(t, SwImpl(20000));
    f.instance.graph.AddImpl(t, HwImpl(1000, 600, 0, 0, /*module=*/9));
  }
  f.ctx.emplace(f.instance, f.options);
  f.scratch.emplace(*f.ctx);
  PaScratch& state = *f.scratch;
  state.SetImpl(a, 1);
  state.SetImpl(b, 1);
  state.CreateRegionFor(a);
  EXPECT_EQ(state.RegionGap(0, a, b), 0);
  state.AssignToRegion(0, b);
  EXPECT_EQ(state.Timing().Windows().earliest_start[1], 1000);
}

TEST(PaStateTest, TotalReconfTimeEstimateMatchesEq6) {
  Fixture f;
  PaScratch& state = f.MakeState();
  state.CreateRegionFor(0);
  EXPECT_EQ(state.TotalReconfTimeEstimate(), 0);  // |T_s| - 1 == 0
  state.AssignToRegion(0, 1);
  EXPECT_EQ(state.TotalReconfTimeEstimate(), state.Region(0).reconf_time);
}

TEST(PaStateTest, SwitchToSoftwareForbiddenAfterAssignment) {
  Fixture f;
  PaScratch& state = f.MakeState();
  state.CreateRegionFor(0);
  EXPECT_THROW(state.SwitchToSoftware(0), InternalError);
  EXPECT_NO_THROW(state.SwitchToSoftware(2));
  EXPECT_FALSE(state.ChosenIsHardware(2));
}

TEST(PaStateTest, SnapshotCriticalityIsStable) {
  Fixture f;
  PaScratch& state = f.MakeState();
  state.SnapshotCriticality();
  // a and b form the critical chain (2000 > 1000 of c).
  EXPECT_TRUE(state.WasCritical(0));
  EXPECT_TRUE(state.WasCritical(1));
  EXPECT_FALSE(state.WasCritical(2));
  // Later implementation changes do not disturb the snapshot.
  state.SetImpl(2, 0);  // c becomes a 20 ms software task (now critical)
  EXPECT_FALSE(state.WasCritical(2));
}

TEST(PaStateTest, AdoptedPrecomputeMatchesContext) {
  Fixture f;
  PaScratch& state = f.MakeState(f.instance.platform.Device().Capacity());
  state.Reset(f.instance.platform.Device().Capacity());
  state.AdoptInitialImplementations();
  state.AdoptInitialCriticality();
  const PaContext& ctx = *f.ctx;
  for (std::size_t t = 0; t < f.instance.graph.NumTasks(); ++t) {
    EXPECT_EQ(state.ImplIndex(static_cast<TaskId>(t)),
              ctx.InitialImpls()[t]);
    EXPECT_EQ(state.Timing().ExecTime(static_cast<TaskId>(t)),
              ctx.InitialExecTimes()[t]);
    EXPECT_EQ(state.WasCritical(static_cast<TaskId>(t)),
              ctx.InitialCriticalMask()[t]);
  }
}

// Oracle for pa::FirstLaneGap: repeatedly bump the candidate past any slot
// that overlaps [candidate, candidate + duration) until a fixpoint. Quadratic
// and cursor-free — correctness is obvious by inspection.
TimeT NaiveLaneGap(const std::vector<std::pair<TimeT, TimeT>>& slots,
                   TimeT lo, TimeT duration) {
  TimeT candidate = lo;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& s : slots) {
      if (s.first < candidate + duration && s.second > candidate) {
        candidate = s.second;
        moved = true;
      }
    }
  }
  return candidate;
}

// Differential sweep for the resume-cursor slot search (PR 9 satellite):
// random disjoint lanes built the way production builds them (each insertion
// lands in a gap the search itself found), probed with a mix of monotone and
// deliberately stale (backwards) queries sharing one resume cursor. Every
// answer must be bit-identical to the naive rescan-from-zero oracle, and to
// the cursor-less call.
TEST(PaStateTest, FirstLaneGapMatchesNaiveScan) {
  Rng rng(20260808);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::pair<TimeT, TimeT>> slots;
    std::size_t resume = 0;
    TimeT frontier = 0;  // keeps the monotone probes roughly advancing
    for (int step = 0; step < 150; ++step) {
      const bool stale = rng.UniformInt(0, 4) == 0;
      const TimeT lo = stale ? rng.UniformInt(0, 500)
                             : frontier + rng.UniformInt(0, 40);
      const TimeT duration = rng.UniformInt(1, 60);
      const TimeT expected = NaiveLaneGap(slots, lo, duration);
      EXPECT_EQ(pa::FirstLaneGap(slots, lo, duration, &resume), expected)
          << "trial=" << trial << " step=" << step << " lo=" << lo
          << " dur=" << duration;
      EXPECT_EQ(pa::FirstLaneGap(slots, lo, duration, nullptr), expected)
          << "cursor-less call diverged at trial=" << trial
          << " step=" << step;
      if (rng.UniformInt(0, 2) != 0) {
        // Book the found gap, exactly as RunReconfigurationScheduling does.
        const std::pair<TimeT, TimeT> slot{expected, expected + duration};
        slots.insert(std::upper_bound(slots.begin(), slots.end(), slot),
                     slot);
        if (!stale) frontier = std::max(frontier, lo);
      }
    }
  }
}

}  // namespace
}  // namespace resched
