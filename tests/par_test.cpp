// Tests for PA-R, the randomized scheduler variant (Algorithm 1).
#include <gtest/gtest.h>

#include "core/pa_scheduler.hpp"
#include "core/randomized.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

Instance MakeInstance(std::size_t n, std::uint64_t seed) {
  GeneratorOptions gen;
  gen.num_tasks = n;
  return GenerateInstance(MakeZedBoard(), gen, seed, "par");
}

TEST(PaRTest, RequiresSomeBound) {
  const Instance inst = MakeInstance(10, 1);
  PaROptions opt;
  opt.time_budget_seconds = 0.0;
  opt.max_iterations = 0;
  EXPECT_THROW((void)SchedulePaR(inst, opt), InternalError);
}

TEST(PaRTest, RejectsBadCapacityFactors) {
  const Instance inst = MakeInstance(10, 1);
  PaROptions opt;
  opt.max_iterations = 1;
  opt.capacity_factor_lo = 0.0;
  EXPECT_THROW((void)SchedulePaR(inst, opt), InternalError);
  opt.capacity_factor_lo = 0.9;
  opt.capacity_factor_hi = 0.8;
  EXPECT_THROW((void)SchedulePaR(inst, opt), InternalError);
}

TEST(PaRTest, FindsValidScheduleWithinIterationCap) {
  const Instance inst = MakeInstance(20, 7);
  PaROptions opt;
  opt.max_iterations = 30;
  opt.time_budget_seconds = 0.0;  // iteration-bounded
  opt.seed = 5;
  const PaRResult result = SchedulePaR(inst, opt);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.iterations, 30u);
  EXPECT_EQ(result.best.algorithm, "PA-R");
  const ValidationResult r = ValidateSchedule(inst, result.best);
  EXPECT_TRUE(r.ok()) << r.Summary();
  ValidationOptions vopt;
  vopt.require_floorplan = true;
  EXPECT_TRUE(ValidateSchedule(inst, result.best, vopt).ok());
}

TEST(PaRTest, WarmStartNeverWorseThanDeterministicPa) {
  for (const std::uint64_t seed : {3u, 11u, 21u}) {
    const Instance inst = MakeInstance(25, seed);
    const Schedule pa = SchedulePa(inst);
    PaROptions opt;
    opt.max_iterations = 20;
    opt.time_budget_seconds = 0.0;
    opt.seed = seed;
    const PaRResult result = SchedulePaR(inst, opt);
    ASSERT_TRUE(result.found);
    EXPECT_LE(result.best.makespan, pa.makespan);
  }
}

TEST(PaRTest, SingleThreadDeterministic) {
  const Instance inst = MakeInstance(20, 9);
  PaROptions opt;
  opt.max_iterations = 25;
  opt.time_budget_seconds = 0.0;
  opt.threads = 1;
  opt.seed = 4;
  const PaRResult a = SchedulePaR(inst, opt);
  const PaRResult b = SchedulePaR(inst, opt);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.best.makespan, b.best.makespan);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(PaRTest, WithoutWarmStartStillWorks) {
  const Instance inst = MakeInstance(15, 13);
  PaROptions opt;
  opt.max_iterations = 60;
  opt.time_budget_seconds = 0.0;
  opt.seed_with_deterministic = false;
  const PaRResult result = SchedulePaR(inst, opt);
  if (result.found) {
    EXPECT_TRUE(ValidateSchedule(inst, result.best).ok());
  }
  EXPECT_EQ(result.iterations, 60u);
}

TEST(PaRTest, ParallelWorkersProduceValidResult) {
  const Instance inst = MakeInstance(30, 17);
  PaROptions opt;
  opt.max_iterations = 40;
  opt.time_budget_seconds = 0.0;
  opt.threads = 4;
  const PaRResult result = SchedulePaR(inst, opt);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(ValidateSchedule(inst, result.best).ok());
}

TEST(PaRTest, TraceIsMonotoneDecreasing) {
  const Instance inst = MakeInstance(30, 19);
  PaROptions opt;
  opt.max_iterations = 80;
  opt.time_budget_seconds = 0.0;
  opt.record_trace = true;
  const PaRResult result = SchedulePaR(inst, opt);
  ASSERT_TRUE(result.found);
  ASSERT_FALSE(result.trace.empty());
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LT(result.trace[i].makespan, result.trace[i - 1].makespan);
    EXPECT_GE(result.trace[i].seconds, result.trace[i - 1].seconds);
  }
  EXPECT_EQ(result.trace.back().makespan, result.best.makespan);
}

TEST(PaRTest, TimeBudgetIsHonored) {
  const Instance inst = MakeInstance(40, 23);
  PaROptions opt;
  opt.time_budget_seconds = 0.3;
  const PaRResult result = SchedulePaR(inst, opt);
  EXPECT_TRUE(result.found);
  // Generous slack: the loop only checks between iterations.
  EXPECT_LT(result.seconds, 3.0);
  EXPECT_GT(result.iterations, 0u);
}

TEST(PaRTest, LiteralAlgorithm1ModeRuns) {
  // capacity factors pinned to 1.0 and no warm start: the literal paper
  // Algorithm 1. It may or may not find a feasible schedule, but it must
  // not crash and any result must be valid.
  const Instance inst = MakeInstance(15, 29);
  PaROptions opt;
  opt.max_iterations = 40;
  opt.time_budget_seconds = 0.0;
  opt.capacity_factor_lo = 1.0;
  opt.capacity_factor_hi = 1.0;
  opt.seed_with_deterministic = false;
  const PaRResult result = SchedulePaR(inst, opt);
  if (result.found) {
    EXPECT_TRUE(ValidateSchedule(inst, result.best).ok());
  }
}

TEST(PaRTest, BestMakespanIndependentOfThreadCount) {
  // Per-iteration RNG streams (DeriveSeed on the ticket number) make the
  // candidate set a function of (seed, max_iterations) only — the thread
  // count decides who runs an iteration, never what it computes.
  const Instance inst = MakeInstance(25, 37);
  PaROptions opt;
  opt.max_iterations = 40;
  opt.time_budget_seconds = 0.0;
  opt.seed = 12;
  PaRResult reference;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    opt.threads = threads;
    const PaRResult result = SchedulePaR(inst, opt);
    ASSERT_TRUE(result.found) << "threads=" << threads;
    EXPECT_EQ(result.iterations, 40u);
    if (threads == 1) {
      reference = result;
    } else {
      EXPECT_EQ(result.best.makespan, reference.best.makespan)
          << "threads=" << threads;
    }
  }
}

TEST(PaRTest, ScratchReuseIsBitIdentical) {
  // The reusable-PaScratch hot path must be an optimization only: same
  // candidates, same best schedule as the rebuild-everything baseline.
  const Instance inst = MakeInstance(25, 41);
  PaROptions opt;
  opt.max_iterations = 30;
  opt.time_budget_seconds = 0.0;
  opt.seed = 6;
  opt.threads = 2;
  opt.reuse_scratch = true;
  const PaRResult fast = SchedulePaR(inst, opt);
  opt.reuse_scratch = false;
  const PaRResult slow = SchedulePaR(inst, opt);
  ASSERT_TRUE(fast.found);
  ASSERT_TRUE(slow.found);
  EXPECT_EQ(fast.best.makespan, slow.best.makespan);
  EXPECT_EQ(fast.best.floorplan.size(), slow.best.floorplan.size());
}

TEST(PaRTest, FloorplanCacheOnOffBitIdentical) {
  // Cache hits replay the recorded solve bit-for-bit, so disabling the
  // cache must not change the outcome — only the work done.
  const Instance inst = MakeInstance(25, 43);
  PaROptions opt;
  opt.max_iterations = 30;
  opt.time_budget_seconds = 0.0;
  opt.seed = 8;
  opt.threads = 2;
  opt.base.floorplan_cache = true;
  const PaRResult cached = SchedulePaR(inst, opt);
  opt.base.floorplan_cache = false;
  const PaRResult uncached = SchedulePaR(inst, opt);
  ASSERT_TRUE(cached.found);
  ASSERT_TRUE(uncached.found);
  EXPECT_EQ(cached.best.makespan, uncached.best.makespan);
  EXPECT_GT(cached.floorplan_cache.queries, 0u);
  EXPECT_EQ(uncached.floorplan_cache.queries, 0u);
}

TEST(PaRTest, ImprovesOverIterationsOnAverage) {
  // More iterations => final makespan no worse (same seed, nested budget).
  const Instance inst = MakeInstance(30, 31);
  PaROptions small;
  small.max_iterations = 5;
  small.time_budget_seconds = 0.0;
  small.seed = 77;
  PaROptions large = small;
  large.max_iterations = 100;
  const PaRResult a = SchedulePaR(inst, small);
  const PaRResult b = SchedulePaR(inst, large);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_LE(b.best.makespan, a.best.makespan);
}

}  // namespace
}  // namespace resched
