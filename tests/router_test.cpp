// Tests for the reschedd fleet router: consistent-hash ring properties,
// end-to-end routing over real TCP backends, failover when a backend dies
// mid-run, and the cross-layout byte-identity contract (the same request
// set must produce identical bodies whether it runs against one daemon or
// a sharded fleet).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/instance_io.hpp"
#include "router/ring.hpp"
#include "router/router.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace resched {
namespace {

using router::HashRing;
using router::RescheddRouter;
using router::RouterBackend;
using router::RouterOptions;

// ----------------------------------------------------------------- ring --

TEST(HashRingTest, PreferenceCoversAllBackendsExactlyOnce) {
  const HashRing ring({"a", "b", "c"}, {1, 1, 1});
  for (std::uint64_t point : {0ull, 1ull, 0x123456789abcdefull,
                              0xffffffffffffffffull}) {
    std::vector<std::size_t> pref = ring.Preference(point);
    ASSERT_EQ(pref.size(), 3u);
    EXPECT_EQ(pref[0], ring.Primary(point));
    std::sort(pref.begin(), pref.end());
    EXPECT_EQ(pref, (std::vector<std::size_t>{0, 1, 2}));
  }
}

TEST(HashRingTest, LayoutIsDeterministicAndWeightsSkewOwnership) {
  const HashRing ring1({"a", "b"}, {4, 1});
  const HashRing ring2({"a", "b"}, {4, 1});
  std::size_t heavy = 0;
  const std::size_t kPoints = 4096;
  for (std::size_t i = 0; i < kPoints; ++i) {
    const std::uint64_t point = i * 0x9e3779b97f4a7c15ull;
    ASSERT_EQ(ring1.Primary(point), ring2.Primary(point));
    if (ring1.Primary(point) == 0) ++heavy;
  }
  // Weight 4:1 → backend 0 should own roughly 80% of the keyspace; accept
  // a generous band (the vnode placement is hash-random).
  EXPECT_GT(heavy, kPoints * 6 / 10);
  EXPECT_LT(heavy, kPoints * 95 / 100);
}

TEST(HashRingTest, AddingABackendOnlyStealsKeysForItself) {
  const HashRing before({"a", "b", "c"}, {1, 1, 1});
  const HashRing after({"a", "b", "c", "d"}, {1, 1, 1, 1});
  std::size_t moved = 0;
  const std::size_t kPoints = 4096;
  for (std::size_t i = 0; i < kPoints; ++i) {
    const std::uint64_t point = i * 0x9e3779b97f4a7c15ull + 17;
    const std::size_t was = before.Primary(point);
    const std::size_t now = after.Primary(point);
    if (was != now) {
      // The consistent-hashing contract: a key only moves *to* the new
      // backend, never between survivors.
      EXPECT_EQ(now, 3u) << "key moved between surviving backends";
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);           // d owns something
  EXPECT_LT(moved, kPoints / 2);  // and far from everything
}

// ------------------------------------------------------------ fleet e2e --

Instance RouterInstance(std::size_t tasks) {
  Instance instance;
  instance.name = "router-test-" + std::to_string(tasks);
  instance.platform = testing::MakeSmallPlatform();
  instance.graph = testing::MakeChain(tasks);
  return instance;
}

std::string ScheduleLine(const Instance& instance, const std::string& id,
                         const std::string& tenant = "") {
  JsonObject request;
  request["verb"] = "schedule";
  request["id"] = id;
  request["instance"] = InstanceToJson(instance);
  if (!tenant.empty()) request["tenant"] = tenant;
  return JsonValue(std::move(request)).Dump(-1);
}

std::string StripId(const std::string& line) {
  const std::size_t comma = line.find(',');
  EXPECT_NE(comma, std::string::npos) << line;
  return "{" + line.substr(comma + 1);
}

/// One reschedd daemon on an ephemeral localhost TCP port.
class TcpBackend {
 public:
  TcpBackend() : transport_("127.0.0.1", 0) {
    service::ServerOptions options;
    options.workers = 1;
    server_ = std::make_unique<service::RescheddServer>(transport_, options);
    thread_ = std::thread([this] { server_->Serve(); });
  }

  ~TcpBackend() { Sever(); }

  /// kill -9 equivalent for routing purposes: drop the listener and the
  /// live connection so the router sees connection failures. (The process
  /// stays alive — this tests re-routing, not crash recovery, which the
  /// journal harness owns.) Also the orderly teardown: Close wakes the
  /// serve loop, which drains and exits. Idempotent — the router's own
  /// shutdown broadcast may already have stopped the server.
  void Sever() {
    if (stopped_) return;
    stopped_ = true;
    transport_.Close();
    thread_.join();
  }

  std::uint16_t Port() const { return transport_.Port(); }

 private:
  service::TcpServerTransport transport_;
  std::unique_ptr<service::RescheddServer> server_;
  std::thread thread_;
  bool stopped_ = false;
};

/// A router over a PipeTransport front, serving from a background thread.
class PipeRouter {
 public:
  explicit PipeRouter(RouterOptions options)
      : router_(pipe_, options), thread_([this] { router_.Serve(); }) {
    EXPECT_TRUE(pipe_.Receive(handshake_));
  }

  ~PipeRouter() { Shutdown(); }

  std::string SubmitAndWait(const std::string& line) {
    pipe_.Send(line);
    std::string response;
    EXPECT_TRUE(pipe_.Receive(response));
    return response;
  }

  void Shutdown() {
    if (stopped_) return;
    stopped_ = true;
    pipe_.Send(R"({"verb":"shutdown","id":"__rstop"})");
    std::string line;
    while (pipe_.Receive(line)) {
      if (JsonValue::Parse(line).GetString("id", "") == "__rstop") break;
    }
    thread_.join();
  }

  RescheddRouter& Router() { return router_; }
  const std::string& Handshake() const { return handshake_; }

 private:
  service::PipeTransport pipe_;
  RescheddRouter router_;
  std::thread thread_;
  std::string handshake_;
  bool stopped_ = false;
};

RouterOptions OptionsFor(const std::vector<TcpBackend*>& backends) {
  RouterOptions options;
  for (std::size_t i = 0; i < backends.size(); ++i) {
    RouterBackend b;
    b.name = "be" + std::to_string(i);
    b.host = "127.0.0.1";
    b.port = backends[i]->Port();
    options.backends.push_back(b);
  }
  // Keep failover fast in tests: one connect attempt per backend, short
  // probe period.
  options.attempts_per_backend = 1;
  options.probe_interval_ms = 50.0;
  return options;
}

TEST(RouterTest, ShardsAcrossBackendsWithByteIdenticalBodies) {
  // Reference run: every request against one daemon.
  std::map<std::string, std::string> reference;
  {
    TcpBackend solo;
    PipeRouter router(OptionsFor({&solo}));
    EXPECT_EQ(JsonValue::Parse(router.Handshake()).GetInt("protocol", -1),
              service::kProtocolVersion);
    for (std::size_t tasks = 3; tasks <= 8; ++tasks) {
      const std::string id = "q" + std::to_string(tasks);
      reference[id] =
          StripId(router.SubmitAndWait(ScheduleLine(RouterInstance(tasks),
                                                    id)));
    }
  }
  // Fleet run: same requests against three shards.
  {
    TcpBackend b0, b1, b2;
    PipeRouter router(OptionsFor({&b0, &b1, &b2}));
    for (std::size_t tasks = 3; tasks <= 8; ++tasks) {
      const std::string id = "q" + std::to_string(tasks);
      const std::string response =
          router.SubmitAndWait(ScheduleLine(RouterInstance(tasks), id));
      EXPECT_TRUE(JsonValue::Parse(response).GetBool("ok", false))
          << response;
      EXPECT_EQ(StripId(response), reference[id]) << id;
    }
    // The stats verb answers from the router itself.
    const std::string stats =
        router.SubmitAndWait(R"({"verb":"stats","id":"st"})");
    const JsonValue doc = JsonValue::Parse(stats);
    EXPECT_TRUE(doc.GetBool("router", false)) << stats;
    ASSERT_TRUE(doc.Contains("backends"));
    EXPECT_EQ(doc.At("backends").AsObject().size(), 3u);
    std::int64_t forwarded = 0;
    for (const auto& [name, b] : doc.At("backends").AsObject()) {
      forwarded += b.GetInt("forwarded", 0);
    }
    EXPECT_EQ(forwarded, 6);
    ASSERT_TRUE(doc.Contains("tenants"));
    EXPECT_EQ(
        doc.At("tenants").At("default").GetInt("forwarded", -1), 6);
  }
}

TEST(RouterTest, ReroutesToTheNextBackendWhenOneDies) {
  TcpBackend b0, b1;
  PipeRouter router(OptionsFor({&b0, &b1}));

  // Warm both shards, remembering reference bodies.
  std::map<std::string, std::string> bodies;
  for (std::size_t tasks = 3; tasks <= 8; ++tasks) {
    const std::string id = "w" + std::to_string(tasks);
    const std::string response =
        router.SubmitAndWait(ScheduleLine(RouterInstance(tasks), id));
    ASSERT_TRUE(JsonValue::Parse(response).GetBool("ok", false)) << response;
    bodies[id] = StripId(response);
  }

  b1.Sever();

  // Every request — including those whose primary was the dead backend —
  // must still be answered ok, with the same deterministic body.
  for (std::size_t tasks = 3; tasks <= 8; ++tasks) {
    const std::string id = "k" + std::to_string(tasks);
    const std::string response =
        router.SubmitAndWait(ScheduleLine(RouterInstance(tasks), id));
    ASSERT_TRUE(JsonValue::Parse(response).GetBool("ok", false)) << response;
    EXPECT_EQ(StripId(response),
              bodies["w" + std::to_string(tasks)]) << id;
  }
  // The dead backend is out of rotation until its probe succeeds (it
  // never will here — the listener is gone).
  EXPECT_FALSE(router.Router().BackendHealthy(1));
  EXPECT_TRUE(router.Router().BackendHealthy(0));
}

TEST(RouterTest, AllBackendsDeadYieldsUnavailableNotAHang) {
  TcpBackend b0;
  PipeRouter router(OptionsFor({&b0}));
  b0.Sever();
  const std::string response =
      router.SubmitAndWait(ScheduleLine(RouterInstance(4), "dead1"));
  const JsonValue doc = JsonValue::Parse(response);
  EXPECT_FALSE(doc.GetBool("ok", true)) << response;
  EXPECT_EQ(doc.At("error").GetString("code", ""),
            service::kErrUnavailable) << response;
}

TEST(RouterTest, CancelBroadcastsAndIdlessRequestsGetAnId) {
  TcpBackend b0, b1;
  PipeRouter router(OptionsFor({&b0, &b1}));
  // Nothing is running, so the broadcast ORs two falses.
  const std::string cancel = router.SubmitAndWait(
      R"({"verb":"cancel","id":"c1","target":"nope"})");
  const JsonValue doc = JsonValue::Parse(cancel);
  EXPECT_TRUE(doc.GetBool("ok", false)) << cancel;
  EXPECT_FALSE(doc.GetBool("cancelled", true)) << cancel;

  // An id-less request gets a router-assigned id ("x<N>") so the
  // idempotent forwarding path works; the response carries it back.
  JsonObject bare;
  bare["verb"] = "schedule";
  bare["instance"] = InstanceToJson(RouterInstance(3));
  const std::string response =
      router.SubmitAndWait(JsonValue(std::move(bare)).Dump(-1));
  const JsonValue routed = JsonValue::Parse(response);
  EXPECT_TRUE(routed.GetBool("ok", false)) << response;
  EXPECT_EQ(routed.GetString("id", "").rfind("x", 0), 0u) << response;
}

}  // namespace
}  // namespace resched
