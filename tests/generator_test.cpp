// Tests for the synthetic instance generator: determinism, structural
// properties of the DAGs, the paper's suite shape, implementation Pareto
// structure and module sharing.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

TEST(GeneratorTest, DeterministicForSeed) {
  const Platform platform = MakeZedBoard();
  GeneratorOptions opt;
  opt.num_tasks = 25;
  const Instance a = GenerateInstance(platform, opt, 99, "a");
  const Instance b = GenerateInstance(platform, opt, 99, "b");
  ASSERT_EQ(a.graph.NumTasks(), b.graph.NumTasks());
  ASSERT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  for (std::size_t t = 0; t < a.graph.NumTasks(); ++t) {
    const Task& ta = a.graph.GetTask(static_cast<TaskId>(t));
    const Task& tb = b.graph.GetTask(static_cast<TaskId>(t));
    ASSERT_EQ(ta.impls.size(), tb.impls.size());
    for (std::size_t i = 0; i < ta.impls.size(); ++i) {
      EXPECT_EQ(ta.impls[i].exec_time, tb.impls[i].exec_time);
      EXPECT_EQ(ta.impls[i].module_id, tb.impls[i].module_id);
    }
    EXPECT_EQ(a.graph.Successors(static_cast<TaskId>(t)),
              b.graph.Successors(static_cast<TaskId>(t)));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const Platform platform = MakeZedBoard();
  GeneratorOptions opt;
  opt.num_tasks = 25;
  const Instance a = GenerateInstance(platform, opt, 1, "a");
  const Instance b = GenerateInstance(platform, opt, 2, "b");
  bool any_diff = a.graph.NumEdges() != b.graph.NumEdges();
  for (std::size_t t = 0; !any_diff && t < a.graph.NumTasks(); ++t) {
    any_diff = a.graph.GetTask(static_cast<TaskId>(t)).impls[0].exec_time !=
               b.graph.GetTask(static_cast<TaskId>(t)).impls[0].exec_time;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, ProducesRequestedTaskCount) {
  const Platform platform = MakeZedBoard();
  for (const std::size_t n : {1u, 7u, 40u, 100u}) {
    GeneratorOptions opt;
    opt.num_tasks = n;
    const Instance inst = GenerateInstance(platform, opt, 5, "x");
    EXPECT_EQ(inst.graph.NumTasks(), n);
  }
}

TEST(GeneratorTest, GraphValidatesAgainstDevice) {
  const Platform platform = MakeZedBoard();
  GeneratorOptions opt;
  opt.num_tasks = 60;
  const Instance inst = GenerateInstance(platform, opt, 17, "x");
  EXPECT_NO_THROW(inst.graph.Validate(platform.Device()));
}

TEST(GeneratorTest, EveryTaskHasOneSwAndNHwImpls) {
  const Platform platform = MakeZedBoard();
  GeneratorOptions opt;
  opt.num_tasks = 30;
  opt.num_hw_impls = 3;
  const Instance inst = GenerateInstance(platform, opt, 3, "x");
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    const Task& task = inst.graph.GetTask(static_cast<TaskId>(t));
    ASSERT_EQ(task.impls.size(), 4u);
    EXPECT_TRUE(task.impls[0].IsSoftware());
    for (std::size_t i = 1; i < 4; ++i) EXPECT_TRUE(task.impls[i].IsHardware());
  }
}

TEST(GeneratorTest, HardwareImplsFormTimeAreaPareto) {
  const Platform platform = MakeZedBoard();
  GeneratorOptions opt;
  opt.num_tasks = 20;
  const Instance inst = GenerateInstance(platform, opt, 21, "x");
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    const Task& task = inst.graph.GetTask(static_cast<TaskId>(t));
    for (std::size_t i = 2; i < task.impls.size(); ++i) {
      // Each successive HW impl: slower, but no more CLB.
      EXPECT_GT(task.impls[i].exec_time, task.impls[i - 1].exec_time);
      EXPECT_LE(task.impls[i].res[0], task.impls[i - 1].res[0]);
    }
  }
}

TEST(GeneratorTest, SoftwareSlowerThanFastestHardware) {
  const Platform platform = MakeZedBoard();
  GeneratorOptions opt;
  opt.num_tasks = 20;
  const Instance inst = GenerateInstance(platform, opt, 33, "x");
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    const Task& task = inst.graph.GetTask(static_cast<TaskId>(t));
    EXPECT_GT(task.impls[0].exec_time, task.impls[1].exec_time);
  }
}

TEST(GeneratorTest, ModuleSharingOccursAtHighProbability) {
  const Platform platform = MakeZedBoard();
  GeneratorOptions opt;
  opt.num_tasks = 40;
  opt.share_prob = 0.5;
  const Instance inst = GenerateInstance(platform, opt, 55, "x");
  std::map<std::int32_t, int> module_uses;
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    for (const Implementation& impl :
         inst.graph.GetTask(static_cast<TaskId>(t)).impls) {
      if (impl.IsHardware()) ++module_uses[impl.module_id];
    }
  }
  int shared = 0;
  for (const auto& [id, uses] : module_uses) {
    if (uses > 1) ++shared;
  }
  EXPECT_GT(shared, 0);
}

TEST(GeneratorTest, NoSharingWhenDisabled) {
  const Platform platform = MakeZedBoard();
  GeneratorOptions opt;
  opt.num_tasks = 40;
  opt.share_prob = 0.0;
  const Instance inst = GenerateInstance(platform, opt, 55, "x");
  std::set<std::int32_t> ids;
  std::size_t hw_count = 0;
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    for (const Implementation& impl :
         inst.graph.GetTask(static_cast<TaskId>(t)).impls) {
      if (impl.IsHardware()) {
        ids.insert(impl.module_id);
        ++hw_count;
      }
    }
  }
  EXPECT_EQ(ids.size(), hw_count);
}

TEST(GeneratorTest, EveryNonSinkFeedsSomething) {
  const Platform platform = MakeZedBoard();
  GeneratorOptions opt;
  opt.num_tasks = 50;
  const Instance inst = GenerateInstance(platform, opt, 77, "x");
  // Find the final layer: tasks with no successors must all be able to
  // reach no one, but every task with no successors should at least have
  // predecessors unless the graph is trivial. Weak check: at most
  // max_width sinks.
  std::size_t sinks = 0;
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    if (inst.graph.Successors(static_cast<TaskId>(t)).empty()) ++sinks;
  }
  EXPECT_LE(sinks, opt.max_width);
}

TEST(GeneratorTest, SuiteGroupShape) {
  const Platform platform = MakeZedBoard();
  SuiteSpec spec;
  spec.graphs_per_group = 4;
  const auto group = GenerateSuiteGroup(platform, spec, 30);
  ASSERT_EQ(group.size(), 4u);
  for (const Instance& inst : group) {
    EXPECT_EQ(inst.graph.NumTasks(), 30u);
  }
  // Instances within a group differ.
  const auto signature = [](const Instance& inst) {
    return static_cast<std::int64_t>(inst.graph.NumEdges()) * 1000 +
           inst.graph.GetTask(0).impls[0].exec_time;
  };
  EXPECT_NE(signature(group[0]), signature(group[1]));
}

TEST(GeneratorTest, SuiteGroupIsDeterministic) {
  const Platform platform = MakeZedBoard();
  SuiteSpec spec;
  spec.graphs_per_group = 2;
  const auto a = GenerateSuiteGroup(platform, spec, 20);
  const auto b = GenerateSuiteGroup(platform, spec, 20);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].graph.NumEdges(), b[i].graph.NumEdges());
    EXPECT_EQ(a[i].name, b[i].name);
  }
}

TEST(GeneratorTest, GroupSizeOutsideRangeRejected) {
  const Platform platform = MakeZedBoard();
  SuiteSpec spec;
  EXPECT_THROW((void)GenerateSuiteGroup(platform, spec, 5), InternalError);
  EXPECT_THROW((void)GenerateSuiteGroup(platform, spec, 500), InternalError);
}

TEST(GeneratorTest, JitterDecorrelatesSharedModules) {
  const Platform platform = MakeZedBoard();
  GeneratorOptions opt;
  opt.num_tasks = 40;
  opt.share_prob = 0.9;
  opt.jitter = 0.2;
  const Instance inst = GenerateInstance(platform, opt, 5, "x");
  // With jitter, even same-module implementations may differ in time;
  // just assert the instance is still valid and times positive.
  EXPECT_NO_THROW(inst.graph.Validate(platform.Device()));
}

TEST(GeneratorTest, SmallDeviceClampsOversizedImpls) {
  // A tiny device forces clamping: every HW impl must still fit.
  const Platform platform = testing::MakeSmallPlatform();
  GeneratorOptions opt;
  opt.num_tasks = 10;
  opt.clb_lo = 3000;  // bigger than the small device's 3200 in most draws
  opt.clb_hi = 9000;
  const Instance inst = GenerateInstance(platform, opt, 3, "x");
  EXPECT_NO_THROW(inst.graph.Validate(platform.Device()));
}

}  // namespace
}  // namespace resched
