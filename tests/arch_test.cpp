// Unit tests for the architecture model: resource vectors, resource model,
// fabric construction, devices and platforms.
#include <gtest/gtest.h>

#include "arch/zynq.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

// ---------------------------------------------------------------- ResourceVec

TEST(ResourceVecTest, ArithmeticAndComparison) {
  const ResourceVec a({10, 2, 3});
  const ResourceVec b({5, 1, 0});
  EXPECT_EQ(a + b, ResourceVec({15, 3, 3}));
  EXPECT_EQ(a - b, ResourceVec({5, 1, 3}));
  EXPECT_TRUE(b.FitsWithin(a));
  EXPECT_FALSE(a.FitsWithin(b));
  EXPECT_TRUE(a.FitsWithin(a));
}

TEST(ResourceVecTest, FitsWithinIsComponentWise) {
  const ResourceVec a({10, 0, 0});
  const ResourceVec b({5, 5, 0});
  // Neither dominates the other.
  EXPECT_FALSE(a.FitsWithin(b));
  EXPECT_FALSE(b.FitsWithin(a));
}

TEST(ResourceVecTest, TotalAndZero) {
  EXPECT_EQ(ResourceVec({10, 2, 3}).Total(), 15);
  EXPECT_TRUE(ResourceVec({0, 0, 0}).IsZero());
  EXPECT_FALSE(ResourceVec({0, 1, 0}).IsZero());
  EXPECT_TRUE(ResourceVec(3).IsZero());
}

TEST(ResourceVecTest, MaxIsComponentWise) {
  EXPECT_EQ(ResourceVec::Max(ResourceVec({1, 5, 2}), ResourceVec({3, 1, 2})),
            ResourceVec({3, 5, 2}));
}

TEST(ResourceVecTest, ScaledDownFloors) {
  const ResourceVec a({10, 5, 1});
  EXPECT_EQ(a.ScaledDown(0.9), ResourceVec({9, 4, 0}));
  EXPECT_EQ(a.ScaledDown(0.0), ResourceVec({0, 0, 0}));
  EXPECT_EQ(a.ScaledDown(1.0), a);
  EXPECT_THROW((void)a.ScaledDown(1.5), InternalError);
}

TEST(ResourceVecTest, ArityMismatchThrows) {
  ResourceVec a({1, 2});
  const ResourceVec b({1, 2, 3});
  EXPECT_THROW(a += b, InternalError);
  EXPECT_THROW((void)a.FitsWithin(b), InternalError);
}

TEST(ResourceVecTest, IndexOutOfRangeThrows) {
  const ResourceVec a({1, 2});
  EXPECT_THROW((void)a[2], InternalError);
}

// ---------------------------------------------------------------- ResourceModel

TEST(ResourceModelTest, KindLookup) {
  const ResourceModel model = MakeClbBramDspModel();
  EXPECT_EQ(model.NumKinds(), 3u);
  EXPECT_EQ(model.KindIndex("CLB"), 0u);
  EXPECT_EQ(model.KindIndex("BRAM"), 1u);
  EXPECT_EQ(model.KindIndex("DSP"), 2u);
  EXPECT_TRUE(model.HasKind("DSP"));
  EXPECT_FALSE(model.HasKind("URAM"));
  EXPECT_THROW((void)model.KindIndex("URAM"), InstanceError);
}

TEST(ResourceModelTest, BitstreamBitsIsLinear) {
  const ResourceModel model = MakeClbBramDspModel();
  const ResourceVec res({100, 10, 5});
  const double bits = model.BitstreamBits(res);
  EXPECT_NEAR(bits, 100 * 2327.0 + 10 * 9049.6 + 5 * 4524.8, 1e-6);
  EXPECT_DOUBLE_EQ(model.BitstreamBits(model.ZeroVec()), 0.0);
}

// ---------------------------------------------------------------- fabric/device

TEST(DeviceTest, InterleavedFabricHitsTargets) {
  const ResourceModel model = MakeClbBramDspModel();
  const ResourceVec target({13300, 140, 220});
  const FabricGeometry geom =
      BuildInterleavedFabric(model, target, {100, 10, 20}, 4);
  const FpgaDevice device("d", model, geom);
  // Totals within the column quantum of the request: a fabric can only
  // hit targets to the granularity of one column's contribution.
  const std::vector<std::int64_t> units_per_cell{100, 10, 20};
  for (std::size_t k = 0; k < 3; ++k) {
    const double quantum = static_cast<double>(units_per_cell[k]) * 4.0;
    const double tolerance =
        std::max(0.10 * static_cast<double>(target[k]), 0.5 * quantum);
    EXPECT_NEAR(static_cast<double>(device.Capacity()[k]),
                static_cast<double>(target[k]), tolerance)
        << "kind " << k;
  }
}

TEST(DeviceTest, InterleavedFabricSpreadsKinds) {
  const ResourceModel model = MakeClbBramDspModel();
  const FabricGeometry geom = BuildInterleavedFabric(
      model, ResourceVec({4000, 80, 80}), {100, 10, 20}, 4);
  // BRAM columns must not be contiguous at one end: check that both halves
  // of the die contain at least one BRAM column.
  const std::size_t half = geom.columns.size() / 2;
  auto count_kind = [&](std::size_t from, std::size_t to, ResourceKind kind) {
    std::size_t c = 0;
    for (std::size_t i = from; i < to; ++i) {
      if (geom.columns[i].kind == kind) ++c;
    }
    return c;
  };
  EXPECT_GT(count_kind(0, half, 1), 0u);
  EXPECT_GT(count_kind(half, geom.columns.size(), 1), 0u);
}

TEST(DeviceTest, CapacityDerivedFromGeometry) {
  const FpgaDevice device = testing::MakeSmallDevice();
  ResourceVec sum = device.Model().ZeroVec();
  for (const ColumnSpec& col : device.Geometry().columns) {
    sum[col.kind] += col.units_per_cell *
                     static_cast<std::int64_t>(device.Geometry().rows);
  }
  EXPECT_EQ(sum, device.Capacity());
}

TEST(DeviceTest, Xc7z020Preset) {
  const FpgaDevice device = MakeXc7z020();
  EXPECT_EQ(device.Name(), "XC7Z020");
  EXPECT_EQ(device.Geometry().rows, 4u);
  EXPECT_NEAR(static_cast<double>(device.Capacity()[0]), 13300.0, 1400.0);
  EXPECT_NEAR(static_cast<double>(device.Capacity()[1]), 140.0, 25.0);
  EXPECT_NEAR(static_cast<double>(device.Capacity()[2]), 220.0, 30.0);
}

TEST(DeviceTest, ScaledZynqScales) {
  const FpgaDevice half = MakeScaledZynq(0.5);
  const FpgaDevice full = MakeXc7z020();
  EXPECT_NEAR(static_cast<double>(half.Capacity()[0]),
              0.5 * static_cast<double>(full.Capacity()[0]),
              0.15 * static_cast<double>(full.Capacity()[0]));
  EXPECT_THROW((void)MakeScaledZynq(0.01), InternalError);
}

// ---------------------------------------------------------------- platform

TEST(PlatformTest, ReconfTicksMatchesEq2) {
  const Platform platform = testing::MakeSmallPlatform(2, 1e6);  // 1e6 b/s
  const ResourceVec res({100, 0, 0});
  // bits = 100 * 2327 = 232700; at 1e6 bits/s -> 0.2327 s = 232700 us.
  EXPECT_EQ(platform.ReconfTicks(res), 232700);
}

TEST(PlatformTest, ReconfTicksRoundsUp) {
  const Platform platform = testing::MakeSmallPlatform(2, 3e6);
  const ResourceVec res({1, 0, 0});  // 2327 bits / 3e6 b/s = 775.67 us
  EXPECT_EQ(platform.ReconfTicks(res), 776);
}

TEST(PlatformTest, ZeroVectorReconfiguresInstantly) {
  const Platform platform = testing::MakeSmallPlatform();
  EXPECT_EQ(platform.ReconfTicks(platform.Device().Model().ZeroVec()), 0);
}

TEST(PlatformTest, RequiresCoreAndThroughput) {
  EXPECT_THROW(Platform("p", 0, testing::MakeSmallDevice(), 1e6),
               InternalError);
  EXPECT_THROW(Platform("p", 1, testing::MakeSmallDevice(), 0.0),
               InternalError);
}

TEST(PlatformTest, WithProcessorsCopies) {
  const Platform base = MakeZedBoard();
  const Platform quad = base.WithProcessors(4);
  EXPECT_EQ(quad.NumProcessors(), 4u);
  EXPECT_EQ(base.NumProcessors(), 2u);
  EXPECT_EQ(quad.Device().Name(), base.Device().Name());
}

TEST(PlatformTest, ZedBoardDefaults) {
  const Platform z = MakeZedBoard();
  EXPECT_EQ(z.NumProcessors(), 2u);
  EXPECT_DOUBLE_EQ(z.RecFreqBitsPerSec(), 2.56e8);
}

}  // namespace
}  // namespace resched
