// Tests for the three extensions beyond the paper's base model:
//   * the fixed-grid baseline (equal-size regions, related work [13]),
//   * multiple reconfiguration controllers (related work [8]),
//   * communication overhead across the HW<->SW boundary (paper §VIII
//     future work).
#include <gtest/gtest.h>

#include "baseline/fixed_grid.hpp"
#include "baseline/isk_scheduler.hpp"
#include "core/pa_scheduler.hpp"
#include "io/instance_io.hpp"
#include "sched/comm.hpp"
#include "taskgraph/timing.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::MakeSmallPlatform;
using testing::SwImpl;

Instance MakeInstance(std::size_t n, std::uint64_t seed,
                      const Platform& platform = MakeZedBoard()) {
  GeneratorOptions gen;
  gen.num_tasks = n;
  return GenerateInstance(platform, gen, seed, "ext");
}

// ---------------------------------------------------------------- fixed grid

TEST(FixedGridTest, ProducesValidSchedules) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Instance inst = MakeInstance(25, seed);
    const Schedule s = ScheduleFixedGrid(inst);
    const ValidationResult r = ValidateSchedule(inst, s);
    EXPECT_TRUE(r.ok()) << r.Summary();
  }
}

TEST(FixedGridTest, ExplicitSlotCount) {
  const Instance inst = MakeInstance(20, 5);
  FixedGridOptions opt;
  opt.num_slots = 3;
  const Schedule s = ScheduleFixedGrid(inst, opt);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
  EXPECT_LE(s.regions.size(), 3u);
  EXPECT_EQ(s.algorithm, "fixed-grid-3");
  // All used slots have identical (equal-split) size.
  for (const RegionInfo& region : s.regions) {
    EXPECT_EQ(region.res, s.regions.front().res);
  }
}

TEST(FixedGridTest, AutoModePicksBestGranularity) {
  const Instance inst = MakeInstance(25, 7);
  FixedGridOptions fixed1;
  fixed1.num_slots = 1;
  const Schedule one = ScheduleFixedGrid(inst, fixed1);
  const Schedule best = ScheduleFixedGrid(inst);  // auto
  EXPECT_LE(best.makespan, one.makespan);
}

TEST(FixedGridTest, PaBeatsFixedGridOnAverage) {
  // The §II claim: equal-dimension regions limit the solution space. PA's
  // demand-sized regions should win on average over a suite slice.
  double pa_total = 0.0;
  double grid_total = 0.0;
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    const Instance inst = MakeInstance(30, seed);
    pa_total += static_cast<double>(SchedulePa(inst).makespan);
    grid_total += static_cast<double>(ScheduleFixedGrid(inst).makespan);
  }
  EXPECT_LT(pa_total, grid_total);
}

TEST(FixedGridTest, FirstLoadIntoSlotCostsReconfiguration) {
  // One HW task on a 1-slot grid: the slot boots empty, so exactly one
  // reconfiguration precedes the task.
  TaskGraph g;
  const TaskId t = g.AddTask("t");
  g.AddImpl(t, SwImpl(100000));
  g.AddImpl(t, HwImpl(1000, 500));
  Instance inst{"boot", MakeSmallPlatform(), std::move(g)};
  FixedGridOptions opt;
  opt.num_slots = 1;
  const Schedule s = ScheduleFixedGrid(inst, opt);
  ASSERT_EQ(s.NumHardwareTasks(), 1u);
  EXPECT_EQ(s.reconfigurations.size(), 1u);
  EXPECT_GE(s.task_slots[0].start, s.reconfigurations[0].end);
}

// ---------------------------------------------------------------- controllers

TEST(MultiControllerTest, PlatformPlumbing) {
  const Platform p = MakeZedBoard().WithReconfigurators(3);
  EXPECT_EQ(p.NumReconfigurators(), 3u);
  EXPECT_EQ(p.WithProcessors(4).NumReconfigurators(), 3u);
  EXPECT_THROW(MakeZedBoard().WithReconfigurators(0), InternalError);
}

TEST(MultiControllerTest, PaValidWithTwoControllers) {
  const Instance inst =
      MakeInstance(30, 21, MakeZedBoard().WithReconfigurators(2));
  const Schedule s = SchedulePa(inst);
  const ValidationResult r = ValidateSchedule(inst, s);
  EXPECT_TRUE(r.ok()) << r.Summary();
}

TEST(MultiControllerTest, SecondControllerUsedUnderContention) {
  // Chain forced into region sharing -> many reconfigurations; with two
  // controllers at least one reconfiguration should land on controller 1
  // when the single-controller timeline is saturated.
  TaskGraph g = testing::MakeChain(10, 3000, 1400, 60000);
  Instance inst{"contended", MakeSmallPlatform(2).WithReconfigurators(2),
                std::move(g)};
  const Schedule s = SchedulePa(inst);
  ASSERT_TRUE(ValidateSchedule(inst, s).ok());
  // Chain reconfigurations are inherently serial (each waits for the
  // previous task), so contention is limited; just check validity and
  // controller indices are in range.
  for (const ReconfSlot& r : s.reconfigurations) {
    EXPECT_LT(r.controller, 2u);
  }
}

TEST(MultiControllerTest, TwoControllersNeverHurtMaterially) {
  const Instance one = MakeInstance(40, 23);
  const Instance two =
      MakeInstance(40, 23, MakeZedBoard().WithReconfigurators(2));
  const TimeT mk1 = SchedulePa(one).makespan;
  const TimeT mk2 = SchedulePa(two).makespan;
  EXPECT_LE(static_cast<double>(mk2), 1.05 * static_cast<double>(mk1));
}

TEST(MultiControllerTest, IskValidWithTwoControllers) {
  const Instance inst =
      MakeInstance(25, 29, MakeZedBoard().WithReconfigurators(2));
  IskOptions opt;
  opt.k = 2;
  opt.node_budget = 5000;
  const Schedule s = ScheduleIsk(inst, opt);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
}

TEST(MultiControllerTest, ValidatorRejectsUnknownController) {
  const Instance inst = MakeInstance(20, 31);
  Schedule s = SchedulePa(inst);
  ASSERT_FALSE(s.reconfigurations.empty());
  s.reconfigurations[0].controller = 5;
  EXPECT_FALSE(ValidateSchedule(inst, s).ok());
}

TEST(MultiControllerTest, ValidatorAllowsParallelReconfsOnDistinctControllers) {
  // Hand-build: two reconfigurations overlapping in time but on different
  // controllers must pass V7 on a 2-controller platform and fail on 1.
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  const TaskId b = g.AddTask("b");
  const TaskId c = g.AddTask("c");
  const TaskId d = g.AddTask("d");
  for (const TaskId t : {a, b, c, d}) {
    g.AddImpl(t, SwImpl(90000));
    g.AddImpl(t, HwImpl(1000, 400, 0, 0, static_cast<std::int32_t>(t)));
  }
  // Two independent chains: a->b and c->d.
  g.AddEdge(a, b);
  g.AddEdge(c, d);

  const Platform two = MakeSmallPlatform(2).WithReconfigurators(2);
  Instance inst{"parallel", two, std::move(g)};
  const TimeT reconf =
      inst.platform.ReconfTicks(ResourceVec({400, 0, 0}));

  Schedule s;
  s.task_slots.resize(4);
  s.task_slots[0] = TaskSlot{a, 1, TargetKind::kRegion, 0, 0, 1000};
  s.task_slots[2] = TaskSlot{c, 1, TargetKind::kRegion, 1, 0, 1000};
  s.task_slots[1] = TaskSlot{b, 1, TargetKind::kRegion, 0, 1000 + reconf,
                             2000 + reconf};
  s.task_slots[3] = TaskSlot{d, 1, TargetKind::kRegion, 1, 1000 + reconf,
                             2000 + reconf};
  for (int i = 0; i < 2; ++i) {
    RegionInfo region;
    region.res = ResourceVec({400, 0, 0});
    region.reconf_time = reconf;
    region.tasks = i == 0 ? std::vector<TaskId>{a, b}
                          : std::vector<TaskId>{c, d};
    s.regions.push_back(region);
  }
  s.reconfigurations.push_back(ReconfSlot{0, b, 1000, 1000 + reconf, 0});
  s.reconfigurations.push_back(ReconfSlot{1, d, 1000, 1000 + reconf, 1});
  s.makespan = 2000 + reconf;
  s.algorithm = "hand";

  EXPECT_TRUE(ValidateSchedule(inst, s).ok())
      << ValidateSchedule(inst, s).Summary();

  // Same schedule on a single-controller platform: V7 must fire.
  Instance inst1{"parallel1", MakeSmallPlatform(2), inst.graph};
  EXPECT_FALSE(ValidateSchedule(inst1, s).ok());
}

// ---------------------------------------------------------------- comm model

TEST(CommModelTest, GapOnlyAcrossDomains) {
  TaskGraph g = testing::MakeChain(2);
  g.SetEdgeData(0, 1, 1'000'000);  // 1 MB
  const Platform p = MakeSmallPlatform().WithHwSwBandwidth(100e6);  // 100 MB/s
  // 1 MB at 100 MB/s = 10 ms = 10000 ticks.
  EXPECT_EQ(CommGap(p, g, 0, 1, true, false), 10000);
  EXPECT_EQ(CommGap(p, g, 0, 1, false, true), 10000);
  EXPECT_EQ(CommGap(p, g, 0, 1, true, true), 0);
  EXPECT_EQ(CommGap(p, g, 0, 1, false, false), 0);
}

TEST(CommModelTest, DisabledWithoutBandwidth) {
  TaskGraph g = testing::MakeChain(2);
  g.SetEdgeData(0, 1, 1'000'000);
  const Platform p = MakeSmallPlatform();  // bandwidth 0
  EXPECT_EQ(CommGap(p, g, 0, 1, true, false), 0);
}

TEST(CommModelTest, EdgeDataAccessors) {
  TaskGraph g = testing::MakeChain(3);
  EXPECT_FALSE(g.HasEdgeData());
  g.SetEdgeData(0, 1, 500);
  EXPECT_TRUE(g.HasEdgeData());
  EXPECT_EQ(g.EdgeData(0, 1), 500);
  EXPECT_EQ(g.EdgeData(1, 2), 0);
  g.SetEdgeData(0, 1, 0);
  EXPECT_FALSE(g.HasEdgeData());
  EXPECT_THROW(g.SetEdgeData(1, 0, 5), InternalError);  // no such edge
  EXPECT_THROW((void)g.EdgeData(1, 0), InternalError);
}

TEST(CommModelTest, TimingRespectsBaseEdgeGaps) {
  const TaskGraph g0 = testing::MakeChain(2);
  TaskGraph g = g0;
  TimingContext timing(g);
  timing.SetExecTime(0, 10);
  timing.SetExecTime(1, 10);
  EXPECT_EQ(timing.Windows().makespan, 20);
  timing.SetBaseEdgeGap(0, 1, 7);
  EXPECT_EQ(timing.Windows().earliest_start[1], 17);
  EXPECT_EQ(timing.Windows().makespan, 27);
  timing.SetBaseEdgeGap(0, 1, 0);  // gaps may be lowered again
  EXPECT_EQ(timing.Windows().makespan, 20);
}

TEST(CommModelTest, ValidatorEnforcesTransferGap) {
  // HW producer -> SW consumer back-to-back without the transfer gap must
  // be rejected.
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  const TaskId b = g.AddTask("b");
  g.AddEdge(a, b);
  g.AddImpl(a, SwImpl(90000));
  g.AddImpl(a, HwImpl(1000, 400));
  g.AddImpl(b, SwImpl(500));
  g.SetEdgeData(a, b, 1'000'000);
  const Platform p = MakeSmallPlatform().WithHwSwBandwidth(100e6);
  Instance inst{"comm", p, std::move(g)};

  Schedule s;
  s.task_slots.resize(2);
  s.task_slots[0] = TaskSlot{a, 1, TargetKind::kRegion, 0, 0, 1000};
  s.task_slots[1] = TaskSlot{b, 0, TargetKind::kProcessor, 0, 1000, 1500};
  RegionInfo region;
  region.res = ResourceVec({400, 0, 0});
  region.reconf_time = inst.platform.ReconfTicks(region.res);
  region.tasks = {a};
  s.regions.push_back(region);
  s.makespan = 1500;
  s.algorithm = "hand";
  EXPECT_FALSE(ValidateSchedule(inst, s).ok());

  // With the 10 ms gap respected the schedule is valid.
  s.task_slots[1].start = 11000;
  s.task_slots[1].end = 11500;
  s.makespan = 11500;
  EXPECT_TRUE(ValidateSchedule(inst, s).ok())
      << ValidateSchedule(inst, s).Summary();
}

class CommSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CommSweep, AllSchedulersValidWithCommEnabled) {
  GeneratorOptions gen;
  gen.num_tasks = 25;
  gen.comm_bytes_lo = 10'000;
  gen.comm_bytes_hi = 2'000'000;
  const Platform p = MakeZedBoard().WithHwSwBandwidth(200e6);
  const Instance inst = GenerateInstance(p, gen, GetParam(), "comm");
  ASSERT_TRUE(inst.graph.HasEdgeData());

  const Schedule pa = SchedulePa(inst);
  EXPECT_TRUE(ValidateSchedule(inst, pa).ok())
      << ValidateSchedule(inst, pa).Summary();

  IskOptions isk;
  isk.k = 2;
  isk.node_budget = 5000;
  const Schedule is = ScheduleIsk(inst, isk);
  EXPECT_TRUE(ValidateSchedule(inst, is).ok())
      << ValidateSchedule(inst, is).Summary();

  const Schedule grid = ScheduleFixedGrid(inst);
  EXPECT_TRUE(ValidateSchedule(inst, grid).ok())
      << ValidateSchedule(inst, grid).Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommSweep,
                         ::testing::Range<std::uint64_t>(40, 48));

TEST(CommModelTest, CommPayloadsSurviveInstanceIo) {
  GeneratorOptions gen;
  gen.num_tasks = 12;
  gen.comm_bytes_lo = 100;
  gen.comm_bytes_hi = 5000;
  const Platform p = MakeZedBoard().WithHwSwBandwidth(150e6);
  const Instance inst = GenerateInstance(p, gen, 3, "commio");
  const Instance back = InstanceFromString(InstanceToString(inst));
  EXPECT_DOUBLE_EQ(back.platform.HwSwBandwidthBytesPerSec(), 150e6);
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    for (const TaskId s : inst.graph.Successors(static_cast<TaskId>(t))) {
      EXPECT_EQ(inst.graph.EdgeData(static_cast<TaskId>(t), s),
                back.graph.EdgeData(static_cast<TaskId>(t), s));
    }
  }
}

TEST(CommModelTest, CommMakesHwLessAttractive) {
  // With brutal transfer costs, PA should keep more of the pipeline in one
  // domain; at minimum the makespan grows vs the free-communication case.
  GeneratorOptions gen;
  gen.num_tasks = 30;
  gen.comm_bytes_lo = 4'000'000;
  gen.comm_bytes_hi = 16'000'000;
  const Instance free_comm =
      GenerateInstance(MakeZedBoard(), gen, 9, "free");
  const Instance costly = GenerateInstance(
      MakeZedBoard().WithHwSwBandwidth(50e6), gen, 9, "costly");
  const TimeT mk_free = SchedulePa(free_comm).makespan;
  const TimeT mk_costly = SchedulePa(costly).makespan;
  EXPECT_GE(mk_costly, mk_free);
}

}  // namespace
}  // namespace resched
