// Tests for the IS-k baseline: greedy behaviour of IS-1 (the Figure-1
// trap), window optimization of IS-k, module reuse, prefetching, reference
// bounds, and validity sweeps.
#include <gtest/gtest.h>

#include "baseline/isk_scheduler.hpp"
#include "baseline/priority.hpp"
#include "baseline/reference.hpp"
#include "core/pa_scheduler.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::MakeSmallPlatform;
using testing::SwImpl;

// ---------------------------------------------------------------- priority

TEST(PriorityTest, BottomLevelsOnChain) {
  const TaskGraph g = testing::MakeChain(3, /*hw_time=*/100, /*clb=*/10,
                                         /*sw_time=*/400);
  const auto blevel = ComputeBottomLevels(g);
  // min impl time per task = 100 (hardware).
  EXPECT_EQ(blevel, (std::vector<TimeT>{300, 200, 100}));
  const auto tails = ComputeTails(g);
  EXPECT_EQ(tails, (std::vector<TimeT>{200, 100, 0}));
}

TEST(PriorityTest, BottomLevelsOnDiamond) {
  const TaskGraph g = testing::MakeDiamond(100, 10, 400);
  const auto blevel = ComputeBottomLevels(g);
  EXPECT_EQ(blevel[3], 100);
  EXPECT_EQ(blevel[1], 200);
  EXPECT_EQ(blevel[2], 200);
  EXPECT_EQ(blevel[0], 300);
}

// ---------------------------------------------------------------- reference

TEST(ReferenceTest, AllSoftwareScheduleIsValid) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 9, "sw");
  const Schedule s = ScheduleAllSoftware(inst);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
  EXPECT_EQ(s.NumHardwareTasks(), 0u);
}

TEST(ReferenceTest, AllSoftwareUsesBothCores) {
  const Instance inst{"par", MakeSmallPlatform(2),
                      testing::MakeIndependent(6)};
  const Schedule s = ScheduleAllSoftware(inst);
  bool used[2] = {false, false};
  for (const TaskSlot& slot : s.task_slots) {
    used[slot.target_index] = true;
  }
  EXPECT_TRUE(used[0]);
  EXPECT_TRUE(used[1]);
  // 6 tasks x 4000 on 2 cores = 12000.
  EXPECT_EQ(s.makespan, 12000);
}

TEST(ReferenceTest, WorkBoundBelowAllSchedules) {
  for (const std::uint64_t seed : {5u, 15u, 25u}) {
    GeneratorOptions gen;
    gen.num_tasks = 40;
    const Instance inst =
        GenerateInstance(MakeZedBoard(), gen, seed, "wb");
    const TimeT lb = CombinedLowerBound(inst);
    EXPECT_GE(ScheduleAllSoftware(inst).makespan, lb);
    IskOptions o1;
    o1.k = 1;
    EXPECT_GE(ScheduleIsk(inst, o1).makespan, lb);
  }
}

TEST(ReferenceTest, WorkBoundDominatesOnWideGraphs) {
  // 60 independent equal tasks on a small device: the critical path is one
  // task, but work conservation forces a much larger makespan.
  Instance inst{"wide", testing::MakeSmallPlatform(),
                testing::MakeIndependent(60, 2000, 1500, 9000)};
  EXPECT_GT(WorkLowerBound(inst), CriticalPathLowerBound(inst));
  const Schedule s = SchedulePa(inst);
  ASSERT_TRUE(ValidateSchedule(inst, s).ok());
  EXPECT_GE(s.makespan, CombinedLowerBound(inst));
}

TEST(ReferenceTest, CriticalPathBoundIsUnbeatable) {
  for (const std::uint64_t seed : {10u, 20u}) {
    const Instance inst =
        GenerateInstance(MakeZedBoard(), GeneratorOptions{}, seed, "lb");
    const TimeT lb = CriticalPathLowerBound(inst);
    IskOptions o5;
    o5.k = 5;
    o5.node_budget = 5000;
    EXPECT_GE(ScheduleIsk(inst, o5).makespan, lb);
    EXPECT_GE(ScheduleAllSoftware(inst).makespan, lb);
  }
}

// ---------------------------------------------------------------- IS-1

TEST(IskTest, Is1FallsIntoFigure1Trap) {
  // Same instance as pa_test's Figure-1: IS-1 greedily picks the fast
  // large implementation for t1 and ends up serializing t2/t3.
  const ResourceModel model = MakeClbBramDspModel();
  FabricGeometry geom = BuildInterleavedFabric(
      model, ResourceVec({1000, 10, 20}), {50, 5, 10}, 2);
  FpgaDevice device("fig1", model, std::move(geom));
  Platform platform("fig1", 1, std::move(device), 1.024e9);
  TaskGraph g;
  const TaskId t1 = g.AddTask("t1");
  const TaskId t2 = g.AddTask("t2");
  const TaskId t3 = g.AddTask("t3");
  g.AddEdge(t1, t2);
  g.AddEdge(t1, t3);
  g.AddImpl(t1, SwImpl(50000));
  g.AddImpl(t1, HwImpl(2000, 800));
  g.AddImpl(t1, HwImpl(4000, 300));
  g.AddImpl(t2, SwImpl(50000));
  g.AddImpl(t2, HwImpl(5000, 350));
  g.AddImpl(t3, SwImpl(50000));
  g.AddImpl(t3, HwImpl(5000, 330));
  Instance inst{"fig1", std::move(platform), std::move(g)};

  IskOptions o1;
  o1.k = 1;
  const Schedule s = ScheduleIsk(inst, o1);
  ASSERT_TRUE(ValidateSchedule(inst, s).ok());
  // Greedy local choice: the fast large implementation (index 1).
  EXPECT_EQ(s.task_slots[0].impl_index, 1u);
  // Which costs it dearly: strictly worse than the PA makespan of 9000.
  EXPECT_GT(s.makespan, 9000);
}

TEST(IskTest, SingleTaskOptimal) {
  TaskGraph g;
  const TaskId t = g.AddTask("t");
  g.AddImpl(t, SwImpl(1000));
  g.AddImpl(t, HwImpl(100, 200));
  Instance inst{"one", MakeSmallPlatform(), std::move(g)};
  const Schedule s = ScheduleIsk(inst, IskOptions{});
  EXPECT_EQ(s.makespan, 100);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
}

TEST(IskTest, UsesSoftwareWhenCheaper) {
  // SW time below any HW time: IS-1 must put the task on a core.
  TaskGraph g;
  const TaskId t = g.AddTask("t");
  g.AddImpl(t, SwImpl(50));
  g.AddImpl(t, HwImpl(100, 200));
  Instance inst{"sw", MakeSmallPlatform(), std::move(g)};
  const Schedule s = ScheduleIsk(inst, IskOptions{});
  EXPECT_EQ(s.NumHardwareTasks(), 0u);
  EXPECT_EQ(s.makespan, 50);
}

TEST(IskTest, ModuleReuseSkipsReconfiguration) {
  TaskGraph g;
  for (std::size_t i = 0; i < 4; ++i) {
    const TaskId t = g.AddTask("m" + std::to_string(i));
    g.AddImpl(t, SwImpl(60000));
    g.AddImpl(t, HwImpl(2000, 2800, 0, 0, /*module=*/3));
    if (i > 0) g.AddEdge(static_cast<TaskId>(i - 1), t);
  }
  Instance inst{"reuse", MakeSmallPlatform(), std::move(g)};

  IskOptions with;
  with.module_reuse = true;
  const Schedule a = ScheduleIsk(inst, with);
  ASSERT_TRUE(ValidateSchedule(inst, a).ok());

  IskOptions without;
  without.module_reuse = false;
  const Schedule b = ScheduleIsk(inst, without);
  ValidationOptions strict;
  strict.allow_module_reuse = false;
  ASSERT_TRUE(ValidateSchedule(inst, b, strict).ok());

  EXPECT_LT(a.reconfigurations.size(), b.reconfigurations.size());
  EXPECT_LT(a.makespan, b.makespan);
}

TEST(IskTest, ReconfigurationPrefetching) {
  // Two independent 2-task chains forced into two regions; the second
  // task's reconfiguration can be prefetched while the first tasks still
  // run. Validity is the key property; prefetch shows as reconf.start
  // strictly before the preceding region task's successor would demand.
  GeneratorOptions gen;
  gen.num_tasks = 12;
  const Instance inst =
      GenerateInstance(MakeSmallPlatform(), gen, 77, "prefetch");
  const Schedule s = ScheduleIsk(inst, IskOptions{});
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
}

TEST(IskTest, DeterministicAcrossRuns) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 31, "det");
  IskOptions opt;
  opt.k = 2;
  opt.node_budget = 5000;
  const Schedule a = ScheduleIsk(inst, opt);
  const Schedule b = ScheduleIsk(inst, opt);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(IskTest, LargerWindowNeverHurtsOnSmallInstances) {
  // With an ample node budget, IS-3's window optimum cannot be worse than
  // IS-1's greedy on the same instance... per window. Globally the greedy
  // commitment order differs, so we only check IS-3 stays within 10% worse
  // and is usually better; hard guarantees need exhaustive search.
  double sum1 = 0.0;
  double sum3 = 0.0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    GeneratorOptions gen;
    gen.num_tasks = 12;
    const Instance inst = GenerateInstance(MakeZedBoard(), gen, seed, "k");
    IskOptions o1;
    o1.k = 1;
    IskOptions o3;
    o3.k = 3;
    o3.node_budget = 200000;
    const Schedule s1 = ScheduleIsk(inst, o1);
    const Schedule s3 = ScheduleIsk(inst, o3);
    EXPECT_TRUE(ValidateSchedule(inst, s1).ok());
    EXPECT_TRUE(ValidateSchedule(inst, s3).ok());
    sum1 += static_cast<double>(s1.makespan);
    sum3 += static_cast<double>(s3.makespan);
  }
  EXPECT_LE(sum3, sum1 * 1.05);
}

TEST(IskTest, TimeBudgetFallsBackToGreedy) {
  GeneratorOptions gen;
  gen.num_tasks = 30;
  const Instance inst = GenerateInstance(MakeZedBoard(), gen, 8, "budget");
  IskOptions opt;
  opt.k = 5;
  opt.node_budget = 100000;
  opt.time_budget_seconds = 1e-9;  // expires immediately
  const Schedule s = ScheduleIsk(inst, opt);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
}

TEST(IskTest, MetadataPopulated) {
  const Instance inst =
      GenerateInstance(MakeZedBoard(), GeneratorOptions{}, 2, "meta");
  IskOptions opt;
  opt.k = 5;
  const Schedule s = ScheduleIsk(inst, opt);
  EXPECT_EQ(s.algorithm, "IS-5");
  EXPECT_GT(s.scheduling_seconds, 0.0);
  EXPECT_TRUE(s.floorplan_checked);
}

// ---------------------------------------------------------------- sweeps

struct IskParam {
  std::size_t k;
  std::size_t num_tasks;
  std::uint64_t seed;
};

class IskValiditySweep : public ::testing::TestWithParam<IskParam> {};

TEST_P(IskValiditySweep, ProducesValidSchedule) {
  const IskParam p = GetParam();
  GeneratorOptions gen;
  gen.num_tasks = p.num_tasks;
  const Instance inst = GenerateInstance(MakeZedBoard(), gen, p.seed, "s");
  IskOptions opt;
  opt.k = p.k;
  opt.node_budget = 20000;
  const Schedule s = ScheduleIsk(inst, opt);
  const ValidationResult r = ValidateSchedule(inst, s);
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_GE(s.makespan, CriticalPathLowerBound(inst));
}

INSTANTIATE_TEST_SUITE_P(
    Windows, IskValiditySweep,
    ::testing::Values(IskParam{1, 10, 1}, IskParam{1, 30, 2},
                      IskParam{1, 60, 3}, IskParam{2, 20, 4},
                      IskParam{3, 20, 5}, IskParam{5, 20, 6},
                      IskParam{5, 40, 7}, IskParam{4, 15, 8}),
    [](const ::testing::TestParamInfo<IskParam>& param_info) {
      return "k" + std::to_string(param_info.param.k) + "_n" +
             std::to_string(param_info.param.num_tasks) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace resched
