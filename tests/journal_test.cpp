// Unit tests for the crash-safe journal: CRC32C, v2 framing, the recovery
// scan's torn-tail / interior-corruption distinction, v1 interop (a
// committed fixture must replay byte-identically forever), fsync-policy
// parsing, and the lexical response-id stripper the warm start relies on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <string>

#include "service/journal.hpp"
#include "service/protocol.hpp"
#include "util/crc32c.hpp"

namespace resched {
namespace {

using service::FrameRecordV2;
using service::Journal;
using service::JournalError;
using service::JournalScan;
using service::JournalSync;
using service::ParseJournalSync;
using service::ScanJournalFile;
using service::ScanJournalText;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name + "." + std::to_string(::getpid());
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << text;
  out.close();
  ASSERT_TRUE(out.good()) << path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

const char kMeta[] = R"({"journal":"meta","protocol":1})";
const char kReq[] = R"({"journal":"request","id":"a","line":"{\"verb\":\"stats\"}"})";
const char kResp[] =
    R"({"journal":"response","id":"a","line":"{\"id\":\"a\",\"ok\":true}","served":"exec"})";

// ------------------------------------------------------------------ crc32c --

TEST(Crc32cTest, MatchesKnownVectors) {
  // The CRC32C check value (RFC 3720 appendix B.4 family).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // Incremental == one-shot.
  const std::string text = "resched journal payload";
  const std::uint32_t whole = Crc32c(text);
  const std::uint32_t split = Crc32c(text.substr(8), Crc32c(text.substr(0, 8)));
  EXPECT_EQ(split, whole);
}

// ----------------------------------------------------------------- framing --

TEST(JournalScanTest, FramedRecordRoundTrips) {
  const std::string text =
      FrameRecordV2(kMeta) + FrameRecordV2(kReq) + FrameRecordV2(kResp);
  const JournalScan scan = ScanJournalText(text);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_TRUE(scan.saw_meta);
  EXPECT_EQ(scan.v2_records, 3u);
  EXPECT_EQ(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.valid_bytes, text.size());
  EXPECT_EQ(scan.records[1].kind, "request");
  EXPECT_EQ(scan.records[1].id, "a");
  EXPECT_EQ(scan.records[2].served, "exec");
}

TEST(JournalScanTest, V1BareLinesStillScan) {
  // A journal written before framing existed: bare JSONL records. They
  // must scan (and replay) forever — v1 files in the field do not expire.
  const std::string text = std::string(kMeta) + "\n" + kReq + "\n";
  const JournalScan scan = ScanJournalText(text);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.v1_records, 2u);
  EXPECT_EQ(scan.records[0].version, 1);
  EXPECT_TRUE(scan.saw_meta);

  // And a journal may mix both (v1 file continued by a v2 daemon).
  const std::string mixed = text + FrameRecordV2(kResp);
  const JournalScan both = ScanJournalText(mixed);
  ASSERT_EQ(both.records.size(), 3u);
  EXPECT_EQ(both.v1_records, 2u);
  EXPECT_EQ(both.v2_records, 1u);
}

TEST(JournalScanTest, TornTailIsDroppedAndCounted) {
  const std::string whole = FrameRecordV2(kMeta) + FrameRecordV2(kReq);
  // A crash mid-append leaves a prefix of the next frame (no newline, or
  // a truncated payload whose CRC cannot match).
  const std::string frame = FrameRecordV2(kResp);
  for (const std::size_t keep : {std::size_t{1}, std::size_t{10},
                                 frame.size() - 1}) {
    const std::string torn = whole + frame.substr(0, keep);
    const JournalScan scan = ScanJournalText(torn);
    ASSERT_EQ(scan.records.size(), 2u) << "keep=" << keep;
    EXPECT_EQ(scan.torn_bytes, keep) << "keep=" << keep;
    EXPECT_EQ(scan.valid_bytes, whole.size()) << "keep=" << keep;
  }
}

TEST(JournalScanTest, InteriorCorruptionThrowsInsteadOfFakingHistory) {
  // Flip one payload byte of the middle record: its CRC fails but a valid
  // record follows, so this is bit rot, not a torn tail.
  std::string middle = FrameRecordV2(kReq);
  middle[middle.size() / 2] ^= 0x01;
  const std::string text =
      FrameRecordV2(kMeta) + middle + FrameRecordV2(kResp);
  EXPECT_THROW((void)ScanJournalText(text), JournalError);
}

TEST(JournalScanTest, CrcMismatchWithCorrectLengthIsDetected) {
  std::string frame = FrameRecordV2(kReq);
  // Corrupt the checksum field itself (bytes after "#v2 <len> ").
  const std::size_t crc_pos = frame.find(' ', 4) + 1;
  frame[crc_pos] = frame[crc_pos] == 'f' ? '0' : 'f';
  const JournalScan scan = ScanJournalText(frame);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.torn_bytes, frame.size());
}

// ---------------------------------------------------------- journal writer --

TEST(JournalTest, ReopenAfterTornTailTruncatesToLastWholeRecord) {
  const std::string path = TempPath("resched_journal_torn");
  (void)::unlink(path.c_str());
  {
    Journal journal(path, JournalSync::kAlways);
    journal.AppendRequest("a", R"({"verb":"stats"})");
    journal.AppendResponse("a", R"({"id":"a","ok":true})", "control");
  }
  const std::string committed = ReadFile(path);

  // Simulate a crash mid-append: half of a fourth record on disk.
  const std::string partial = FrameRecordV2(kResp);
  WriteFile(path, committed + partial.substr(0, partial.size() / 2));

  Journal reopened(path, JournalSync::kAlways);
  EXPECT_EQ(reopened.Report().torn_bytes, partial.size() / 2);
  EXPECT_EQ(reopened.Report().records, 3u);  // meta + request + response
  EXPECT_EQ(reopened.Report().valid_bytes, committed.size());
  reopened.AppendRequest("b", R"({"verb":"stats"})");
  reopened.Sync();

  // The truncated file continues at a record boundary: everything scans,
  // including the second meta record from the reopen.
  const JournalScan scan = ScanJournalFile(path, /*truncate_torn=*/false);
  EXPECT_EQ(scan.torn_bytes, 0u);
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.records[4].id, "b");
  (void)::unlink(path.c_str());
}

TEST(JournalTest, ScanFileCanTruncateOnDisk) {
  const std::string path = TempPath("resched_journal_trunc");
  const std::string whole = FrameRecordV2(kMeta) + FrameRecordV2(kReq);
  WriteFile(path, whole + "#v2 999 deadbeef {\"jour");

  const JournalScan scan = ScanJournalFile(path, /*truncate_torn=*/true);
  EXPECT_GT(scan.torn_bytes, 0u);
  EXPECT_EQ(ReadFile(path), whole);  // tail is gone on disk too
  (void)::unlink(path.c_str());
}

TEST(JournalSyncTest, ParsePolicies) {
  EXPECT_EQ(ParseJournalSync("none"), JournalSync::kNone);
  EXPECT_EQ(ParseJournalSync("batch"), JournalSync::kBatch);
  EXPECT_EQ(ParseJournalSync("always"), JournalSync::kAlways);
  EXPECT_THROW((void)ParseJournalSync("sometimes"), JournalError);
}

// -------------------------------------------------------------- v1 interop --

TEST(JournalInteropTest, CommittedV1FixtureReplaysByteIdentically) {
  // data/journal_v1_fixture.jsonl was written by the pre-framing daemon
  // and is committed: replay must keep matching bit-for-bit as the journal
  // format evolves. 4 requests: two deterministic schedules, one
  // deterministic simulate (replayed + matched) and a shutdown (skipped).
  const std::string path =
      std::string(RESCHED_TEST_DATA_DIR) + "/journal_v1_fixture.jsonl";
  const service::ReplayOutcome outcome = service::ReplayJournal(path);
  EXPECT_EQ(outcome.requests, 4u);
  EXPECT_EQ(outcome.replayed, 3u);
  EXPECT_EQ(outcome.matched, 3u);
  EXPECT_EQ(outcome.mismatched, 0u);
  EXPECT_EQ(outcome.skipped, 1u);
  EXPECT_EQ(outcome.torn_bytes, 0u);
  EXPECT_TRUE(outcome.ok());
}

// --------------------------------------------------------- id stripping --

TEST(StripResponseIdTest, LexicalStripPreservesBodyBytes) {
  std::string body;
  ASSERT_TRUE(service::StripResponseId(
      R"({"id":"r1","ok":true,"verb":"stats"})", body));
  EXPECT_EQ(body, R"({"ok":true,"verb":"stats"})");

  // Hostile ids: escaped quotes and backslashes must not derail the scan.
  ASSERT_TRUE(service::StripResponseId(
      R"({"id":"a\"b\\","ok":true})", body));
  EXPECT_EQ(body, R"({"ok":true})");

  // Responses without a leading id splice are passed over, not mangled.
  EXPECT_FALSE(service::StripResponseId(R"({"ok":true})", body));
  EXPECT_FALSE(service::StripResponseId("not json", body));
}

}  // namespace
}  // namespace resched
