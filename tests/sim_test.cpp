// Tests for the discrete-event execution simulator.
#include <gtest/gtest.h>

#include "baseline/isk_scheduler.hpp"
#include "core/pa_scheduler.hpp"
#include "sched/comm.hpp"
#include "sim/executor.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using sim::SimOptions;
using sim::SimResult;
using sim::Simulate;

Instance MakeInstance(std::size_t n, std::uint64_t seed) {
  GeneratorOptions gen;
  gen.num_tasks = n;
  return GenerateInstance(MakeZedBoard(), gen, seed, "sim");
}

TEST(SimulatorTest, ZeroJitterNeverLater) {
  // With nominal durations the event-driven replay can only compact the
  // schedule: every task starts no later than statically planned.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Instance inst = MakeInstance(30, seed);
    const Schedule s = SchedulePa(inst);
    const SimResult r = Simulate(inst, s);
    EXPECT_LE(r.makespan, s.makespan);
    for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
      EXPECT_LE(r.task_start[t], s.task_slots[t].start) << "task " << t;
      EXPECT_LE(r.task_end[t], s.task_slots[t].end) << "task " << t;
    }
    EXPECT_LE(r.stretch, 1.0);
  }
}

TEST(SimulatorTest, ZeroJitterPreservesDataDependencies) {
  const Instance inst = MakeInstance(25, 5);
  const Schedule s = SchedulePa(inst);
  const SimResult r = Simulate(inst, s);
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    for (const TaskId succ : inst.graph.Successors(static_cast<TaskId>(t))) {
      EXPECT_GE(r.task_start[static_cast<std::size_t>(succ)],
                r.task_end[t]);
    }
  }
}

TEST(SimulatorTest, DeterministicForSeed) {
  const Instance inst = MakeInstance(20, 7);
  const Schedule s = SchedulePa(inst);
  SimOptions opt;
  opt.task_jitter = 0.3;
  opt.reconf_jitter = 0.2;
  opt.seed = 42;
  const SimResult a = Simulate(inst, s, opt);
  const SimResult b = Simulate(inst, s, opt);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.task_start, b.task_start);
}

TEST(SimulatorTest, JitterChangesOutcome) {
  const Instance inst = MakeInstance(20, 7);
  const Schedule s = SchedulePa(inst);
  SimOptions opt;
  opt.task_jitter = 0.3;
  opt.seed = 1;
  const SimResult jittered = Simulate(inst, s, opt);
  const SimResult nominal = Simulate(inst, s);
  EXPECT_NE(jittered.makespan, nominal.makespan);
}

TEST(SimulatorTest, StretchReportsDegradation) {
  // Average stretch over seeds grows with jitter amplitude.
  const Instance inst = MakeInstance(30, 11);
  const Schedule s = SchedulePa(inst);
  auto avg_stretch = [&](double jitter) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      SimOptions opt;
      opt.task_jitter = jitter;
      opt.reconf_jitter = jitter;
      opt.seed = seed;
      total += Simulate(inst, s, opt).stretch;
    }
    return total / 20.0;
  };
  const double low = avg_stretch(0.05);
  const double high = avg_stretch(0.40);
  EXPECT_GT(high, low);
}

TEST(SimulatorTest, UtilizationIsSane) {
  const Instance inst = MakeInstance(25, 13);
  const Schedule s = SchedulePa(inst);
  const SimResult r = Simulate(inst, s);
  ASSERT_EQ(r.usage.size(), inst.platform.NumProcessors() +
                                s.regions.size() +
                                inst.platform.NumReconfigurators());
  for (const sim::ResourceUsage& usage : r.usage) {
    EXPECT_GE(usage.utilization, 0.0);
    EXPECT_LE(usage.utilization, 1.0 + 1e-9) << usage.name;
  }
  // Region busy time equals the sum of its tasks' durations: with zero
  // jitter it matches the static schedule's occupancy.
  for (std::size_t s_idx = 0; s_idx < s.regions.size(); ++s_idx) {
    TimeT expected = 0;
    for (const TaskId t : s.regions[s_idx].tasks) {
      expected += s.task_slots[static_cast<std::size_t>(t)].end -
                  s.task_slots[static_cast<std::size_t>(t)].start;
    }
    EXPECT_EQ(r.usage[inst.platform.NumProcessors() + s_idx].busy, expected);
  }
}

TEST(SimulatorTest, WorksOnIskSchedules) {
  const Instance inst = MakeInstance(25, 17);
  IskOptions opt;
  opt.k = 2;
  opt.node_budget = 5000;
  const Schedule s = ScheduleIsk(inst, opt);
  const SimResult r = Simulate(inst, s);
  EXPECT_LE(r.makespan, s.makespan);
}

TEST(SimulatorTest, RejectsMismatchedSchedule) {
  const Instance a = MakeInstance(10, 19);
  const Instance b = MakeInstance(12, 19);
  const Schedule s = SchedulePa(a);
  EXPECT_THROW((void)Simulate(b, s), InternalError);
}

TEST(SimulatorTest, HandlesCommGaps) {
  GeneratorOptions gen;
  gen.num_tasks = 20;
  gen.comm_bytes_lo = 100'000;
  gen.comm_bytes_hi = 3'000'000;
  const Instance inst = GenerateInstance(
      MakeZedBoard().WithHwSwBandwidth(100e6), gen, 23, "simcomm");
  const Schedule s = SchedulePa(inst);
  const SimResult r = Simulate(inst, s);
  EXPECT_LE(r.makespan, s.makespan);
  // Transfer gaps respected in the replay.
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    for (const TaskId succ : inst.graph.Successors(static_cast<TaskId>(t))) {
      const TimeT gap = CommGap(
          inst.platform, inst.graph, static_cast<TaskId>(t), succ,
          s.task_slots[t].OnFpga(),
          s.SlotOf(succ).OnFpga());
      EXPECT_GE(r.task_start[static_cast<std::size_t>(succ)],
                r.task_end[t] + gap);
    }
  }
}

}  // namespace
}  // namespace resched
