// Death tests for the RESCHED_CHECK / RESCHED_DCHECK contract macros: a
// deliberately corrupted scheduler state must kill the process (or throw
// InternalError) at the point of corruption, not surface many phases later
// as a plausible-but-wrong schedule.
//
// RESCHED_CHECK throws InternalError in every build; the death tests run the
// corrupting statement behind DieOnInternalError so the child process aborts
// with the check message on stderr. RESCHED_DCHECK aborts directly, but only
// in Debug or RESCHED_CHECKED_BUILD=ON builds — those tests skip themselves
// in plain Release builds where DCHECKs compile out.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "baseline/isk_state.hpp"
#include "core/pa_state.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::MakeChain;
using testing::MakeSmallPlatform;

/// Runs `fn` in a death-test child: an InternalError is converted into the
/// abort EXPECT_DEATH looks for (message on stderr); if no check fires, the
/// child exits cleanly and the death test fails.
template <typename Fn>
void DieOnInternalError(Fn fn) {
  try {
    fn();
  } catch (const InternalError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::fflush(stderr);
    std::abort();
  }
  std::_Exit(0);
}

Instance MakeInstance() {
  return Instance{"check-test", MakeSmallPlatform(), MakeChain(3)};
}

TEST(CheckDeathTest, CorruptedPaStateImplIndexDies) {
  const Instance inst = MakeInstance();
  const PaOptions options;
  const pa::PaContext ctx(inst, options);
  pa::PaScratch state(ctx);
  // Implementation index beyond the task's implementation list.
  EXPECT_DEATH(DieOnInternalError([&] { state.SetImpl(0, 99); }),
               "RESCHED_CHECK failed.*impl index out of range");
}

TEST(CheckDeathTest, CorruptedPaStateDoubleAssignmentDies) {
  const Instance inst = MakeInstance();
  const PaOptions options;
  const pa::PaContext ctx(inst, options);
  pa::PaScratch state(ctx);
  state.SetImpl(0, 1);  // hardware implementation
  const std::size_t region = state.CreateRegionFor(0);
  // Assigning the same task to its region again corrupts region membership.
  EXPECT_DEATH(DieOnInternalError([&] { state.AssignToRegion(region, 0); }),
               "RESCHED_CHECK failed.*already assigned");
}

TEST(CheckDeathTest, CorruptedIskStateRegionIndexDies) {
  const Instance inst = MakeInstance();
  isk::IskState state(inst, inst.platform.Device().Capacity());
  const Implementation hw = HwImpl(1000, 400);
  // Region 5 does not exist.
  EXPECT_DEATH(
      DieOnInternalError([&] {
        (void)state.PlaceInRegion(0, hw, 5, 0, /*module_reuse=*/false);
      }),
      "RESCHED_CHECK failed.*region out of range");
}

TEST(CheckDeathTest, CorruptedIskStateOversizedImplDies) {
  const Instance inst = MakeInstance();
  isk::IskState state(inst, inst.platform.Device().Capacity());
  (void)state.PlaceInNewRegion(0, HwImpl(1000, 400), 0);
  // An implementation larger than the region it is placed into.
  const Implementation huge = HwImpl(1000, 2000);
  EXPECT_DEATH(
      DieOnInternalError([&] {
        (void)state.PlaceInRegion(1, huge, 0, 0, /*module_reuse=*/false);
      }),
      "RESCHED_CHECK failed.*does not fit region");
}

#if RESCHED_DCHECK_IS_ON

TEST(DcheckDeathTest, MacroAbortsWithContext) {
  EXPECT_DEATH(RESCHED_DCHECK_MSG(1 == 2, "deliberately false"),
               "RESCHED_DCHECK failed: 1 == 2.*deliberately false");
}

TEST(DcheckDeathTest, CorruptedPaStateTaskIdAborts) {
  const Instance inst = MakeInstance();
  const PaOptions options;
  const pa::PaContext ctx(inst, options);
  pa::PaScratch state(ctx);
  // Task id outside the instance: the DCHECK fires before any container is
  // touched, so the corruption cannot propagate.
  EXPECT_DEATH(state.SetImpl(99, 0),
               "RESCHED_DCHECK failed.*task id out of range");
}

TEST(DcheckDeathTest, CorruptedIskStateNegativeReadyAborts) {
  const Instance inst = MakeInstance();
  isk::IskState state(inst, inst.platform.Device().Capacity());
  const Implementation sw = testing::SwImpl(500);
  EXPECT_DEATH((void)state.PlaceOnCore(0, sw, 0, -5),
               "RESCHED_DCHECK failed.*negative ready time");
}

#else

TEST(DcheckDeathTest, SkippedInReleaseBuilds) {
  GTEST_SKIP() << "RESCHED_DCHECK compiles out without RESCHED_CHECKED_BUILD "
                  "or a Debug build type";
}

// DCHECK operands must stay syntactically valid but unevaluated when
// compiled out.
TEST(DcheckTest, CompiledOutExpressionIsNotEvaluated) {
  bool evaluated = false;
  RESCHED_DCHECK(([&] {
    evaluated = true;
    return true;
  }()));
  EXPECT_FALSE(evaluated);
}

#endif  // RESCHED_DCHECK_IS_ON

}  // namespace
}  // namespace resched
