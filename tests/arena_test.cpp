// MonotonicArena / ArenaAllocator unit tests (util/arena.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "util/arena.hpp"

namespace resched {
namespace {

TEST(ArenaTest, BumpAllocationAndAlignment) {
  MonotonicArena arena(/*initial_bytes=*/256);
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(arena.NumSlabs(), 1u);
  EXPECT_GE(arena.BytesUsed(), 11u);
}

TEST(ArenaTest, LifoDeallocateReclaims) {
  MonotonicArena arena(256);
  (void)arena.Allocate(16, 8);
  const std::size_t before = arena.BytesUsed();
  void* top = arena.Allocate(32, 8);
  arena.Deallocate(top, 32);
  EXPECT_EQ(arena.BytesUsed(), before);  // top block came back
  void* mid = arena.Allocate(32, 8);
  (void)arena.Allocate(8, 8);
  const std::size_t high = arena.BytesUsed();
  arena.Deallocate(mid, 32);  // not the top: no-op until Rewind
  EXPECT_EQ(arena.BytesUsed(), high);
}

TEST(ArenaTest, GrowsNewSlabsAndRewindCoalesces) {
  MonotonicArena arena(64);
  for (int i = 0; i < 20; ++i) (void)arena.Allocate(48, 8);
  EXPECT_GT(arena.NumSlabs(), 1u);
  const std::size_t capacity = arena.Capacity();
  arena.Rewind();
  EXPECT_EQ(arena.NumSlabs(), 1u);
  EXPECT_EQ(arena.BytesUsed(), 0u);
  EXPECT_GE(arena.Capacity(), capacity);  // high-water capacity persists
  // The whole former working set now fits in the coalesced slab.
  for (int i = 0; i < 20; ++i) (void)arena.Allocate(48, 8);
  EXPECT_EQ(arena.NumSlabs(), 1u);
}

TEST(ArenaTest, ArenaVecBehavesLikeVector) {
  MonotonicArena arena;
  ArenaVec<int> v{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 999 * 1000 / 2);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_EQ(v.capacity(), cap);  // clear keeps the arena block
  ArenaVec<int> w{ArenaAllocator<int>(arena)};
  w.assign(100, 7);
  v.swap(w);  // equal allocators: swap is legal and cheap
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(w.size(), 0u);
  ArenaVec<int> moved = std::move(v);
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_EQ(moved[99], 7);
}

TEST(ArenaTest, AllocationsLargerThanSlabWork) {
  MonotonicArena arena(32);
  void* big = arena.Allocate(10'000, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
}

}  // namespace
}  // namespace resched
