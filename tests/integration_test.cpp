// Cross-module integration tests: every scheduler on the same suite slice,
// I/O round trips feeding schedulers, renderers on real schedules, and the
// relationships the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "baseline/isk_scheduler.hpp"
#include "baseline/reference.hpp"
#include "core/pa_scheduler.hpp"
#include "core/randomized.hpp"
#include "io/instance_io.hpp"
#include "sched/gantt.hpp"
#include "sched/validator.hpp"
#include "taskgraph/dot.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

class SuiteSliceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteSliceTest, AllAlgorithmsValidAndBounded) {
  const std::size_t n = GetParam();
  const Platform platform = MakeZedBoard();
  SuiteSpec spec;
  spec.graphs_per_group = 2;
  const auto group = GenerateSuiteGroup(platform, spec, n);
  for (const Instance& inst : group) {
    const TimeT lb = CriticalPathLowerBound(inst);
    const Schedule all_sw = ScheduleAllSoftware(inst);

    const Schedule pa = SchedulePa(inst);
    EXPECT_TRUE(ValidateSchedule(inst, pa).ok())
        << inst.name << ": " << ValidateSchedule(inst, pa).Summary();
    EXPECT_GE(pa.makespan, lb);

    IskOptions o1;
    o1.k = 1;
    const Schedule is1 = ScheduleIsk(inst, o1);
    EXPECT_TRUE(ValidateSchedule(inst, is1).ok())
        << inst.name << ": " << ValidateSchedule(inst, is1).Summary();
    EXPECT_GE(is1.makespan, lb);
    // IS-1 uses hardware, so it should never lose to the no-FPGA
    // reference by more than rounding: it considers the all-SW choices
    // too. (Greedy commitment can cost a little; allow 25%.)
    EXPECT_LE(static_cast<double>(is1.makespan),
              1.25 * static_cast<double>(all_sw.makespan));

    PaROptions par_opt;
    par_opt.max_iterations = 10;
    par_opt.time_budget_seconds = 0.0;
    const PaRResult par = SchedulePaR(inst, par_opt);
    ASSERT_TRUE(par.found);
    EXPECT_TRUE(ValidateSchedule(inst, par.best).ok());
    EXPECT_LE(par.best.makespan, pa.makespan);
    EXPECT_GE(par.best.makespan, lb);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SuiteSliceTest,
                         ::testing::Values(10, 30, 50),
                         ::testing::PrintToStringParamName());

TEST(IntegrationTest, ScheduleSurvivesInstanceIoRoundTrip) {
  GeneratorOptions gen;
  gen.num_tasks = 20;
  const Instance inst = GenerateInstance(MakeZedBoard(), gen, 41, "io");
  const Instance back = InstanceFromString(InstanceToString(inst));
  // Scheduling the round-tripped instance gives the identical result.
  const Schedule a = SchedulePa(inst);
  const Schedule b = SchedulePa(back);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.regions.size(), b.regions.size());
}

TEST(IntegrationTest, RenderersProduceOutputOnRealSchedules) {
  GeneratorOptions gen;
  gen.num_tasks = 15;
  const Instance inst = GenerateInstance(MakeZedBoard(), gen, 43, "render");
  const Schedule s = SchedulePa(inst);

  const std::string table = ScheduleTable(inst, s);
  EXPECT_NE(table.find("start"), std::string::npos);
  // Every task name appears in the table.
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    EXPECT_NE(table.find(inst.graph.GetTask(static_cast<TaskId>(t)).name),
              std::string::npos);
  }

  const std::string gantt = GanttChart(inst, s, 64);
  EXPECT_NE(gantt.find("icap"), std::string::npos);
  EXPECT_NE(gantt.find("cpu0"), std::string::npos);

  const std::string summary = ScheduleSummary(inst, s);
  EXPECT_NE(summary.find("PA"), std::string::npos);
  EXPECT_NE(summary.find("makespan"), std::string::npos);

  const std::string dot = ToDot(inst.graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(IntegrationTest, HigherReconfThroughputNeverHurtsPa) {
  // recFreq sensitivity: a faster controller can only shrink
  // reconfiguration times; PA's makespan should not increase materially.
  GeneratorOptions gen;
  gen.num_tasks = 30;
  TimeT slow_mk = 0;
  TimeT fast_mk = 0;
  {
    const Instance inst =
        GenerateInstance(MakeZedBoard(2.56e8), gen, 47, "slow");
    slow_mk = SchedulePa(inst).makespan;
  }
  {
    const Instance inst =
        GenerateInstance(MakeZedBoard(3.2e9), gen, 47, "fast");
    fast_mk = SchedulePa(inst).makespan;
  }
  // Heuristics are not monotone in general; allow 10% tolerance.
  EXPECT_LE(static_cast<double>(fast_mk),
            1.10 * static_cast<double>(slow_mk));
}

TEST(IntegrationTest, MoreCoresNeverHurtMaterially) {
  GeneratorOptions gen;
  gen.num_tasks = 30;
  const Instance two =
      GenerateInstance(MakeZedBoard(), gen, 53, "cores2");
  const Instance four = GenerateInstance(
      MakeZedBoard().WithProcessors(4), gen, 53, "cores4");
  const TimeT mk2 = SchedulePa(two).makespan;
  const TimeT mk4 = SchedulePa(four).makespan;
  EXPECT_LE(static_cast<double>(mk4), 1.10 * static_cast<double>(mk2));
}

TEST(IntegrationTest, SchedulersHandleWideGraphs) {
  // Maximally parallel graph: all tasks independent.
  TaskGraph g = testing::MakeIndependent(24, 2000, 900, 9000);
  Instance inst{"wide", MakeZedBoard(), std::move(g)};
  const Schedule pa = SchedulePa(inst);
  EXPECT_TRUE(ValidateSchedule(inst, pa).ok());
  IskOptions o1;
  const Schedule is1 = ScheduleIsk(inst, o1);
  EXPECT_TRUE(ValidateSchedule(inst, is1).ok());
}

TEST(IntegrationTest, SchedulersHandleDeepChains) {
  TaskGraph g = testing::MakeChain(40, 1500, 1200, 5000);
  Instance inst{"deep", MakeZedBoard(), std::move(g)};
  const Schedule pa = SchedulePa(inst);
  EXPECT_TRUE(ValidateSchedule(inst, pa).ok());
  IskOptions o5;
  o5.k = 5;
  o5.node_budget = 10000;
  const Schedule is5 = ScheduleIsk(inst, o5);
  EXPECT_TRUE(ValidateSchedule(inst, is5).ok());
}

TEST(IntegrationTest, PaRunTimeScalesRoughlyLinearly) {
  // Table I property: PA stays fast as n grows. We only pin a loose bound
  // to avoid flaky CI: 100 tasks must schedule (without floorplan) within
  // 150x the 10-task time, and under a second absolute.
  GeneratorOptions gen10;
  gen10.num_tasks = 10;
  GeneratorOptions gen100;
  gen100.num_tasks = 100;
  const Instance small =
      GenerateInstance(MakeZedBoard(), gen10, 59, "t10");
  const Instance large =
      GenerateInstance(MakeZedBoard(), gen100, 59, "t100");
  PaOptions opt;
  opt.run_floorplan = false;

  const Schedule s_small = SchedulePa(small, opt);
  const Schedule s_large = SchedulePa(large, opt);
  EXPECT_LT(s_large.scheduling_seconds, 1.0);
  EXPECT_TRUE(ValidateSchedule(large, s_large).ok());
  (void)s_small;
}

}  // namespace
}  // namespace resched
