// Stress tests on pathological graph shapes and platform corners: every
// scheduler must stay valid on the extremes the suite generator never
// produces.
#include <gtest/gtest.h>

#include "baseline/fixed_grid.hpp"
#include "baseline/isk_scheduler.hpp"
#include "core/pa_scheduler.hpp"
#include "sched/validator.hpp"
#include "taskgraph/generator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::SwImpl;

void ExpectAllValid(const Instance& inst) {
  const Schedule pa = SchedulePa(inst);
  EXPECT_TRUE(ValidateSchedule(inst, pa).ok())
      << "PA: " << ValidateSchedule(inst, pa).Summary();
  IskOptions isk;
  isk.k = 2;
  isk.node_budget = 4000;
  const Schedule is = ScheduleIsk(inst, isk);
  EXPECT_TRUE(ValidateSchedule(inst, is).ok())
      << "IS: " << ValidateSchedule(inst, is).Summary();
  const Schedule grid = ScheduleFixedGrid(inst);
  EXPECT_TRUE(ValidateSchedule(inst, grid).ok())
      << "grid: " << ValidateSchedule(inst, grid).Summary();
}

TEST(PathologicalTest, LongChain) {
  Instance inst{"chain", MakeZedBoard(), testing::MakeChain(120, 900, 700,
                                                            3000)};
  ExpectAllValid(inst);
}

TEST(PathologicalTest, WideStar) {
  // One source feeding 80 independent children.
  TaskGraph g;
  const TaskId hub = g.AddTask("hub");
  g.AddImpl(hub, SwImpl(2000));
  g.AddImpl(hub, HwImpl(500, 800));
  for (int i = 0; i < 80; ++i) {
    const TaskId t = g.AddTask("leaf" + std::to_string(i));
    g.AddImpl(t, SwImpl(4000));
    g.AddImpl(t, HwImpl(1200, 600));
    g.AddEdge(hub, t);
  }
  Instance inst{"star", MakeZedBoard(), std::move(g)};
  ExpectAllValid(inst);
}

TEST(PathologicalTest, InvertedStar) {
  // 60 sources converging into one sink.
  TaskGraph g;
  const TaskId sink = g.AddTask("sink");
  g.AddImpl(sink, SwImpl(2000));
  for (int i = 0; i < 60; ++i) {
    const TaskId t = g.AddTask("src" + std::to_string(i));
    g.AddImpl(t, SwImpl(4000));
    g.AddImpl(t, HwImpl(900, 500));
    g.AddEdge(t, sink);
  }
  Instance inst{"join", MakeZedBoard(), std::move(g)};
  ExpectAllValid(inst);
}

TEST(PathologicalTest, FullyIndependent) {
  Instance inst{"flat", MakeZedBoard(),
                testing::MakeIndependent(100, 1500, 900, 6000)};
  ExpectAllValid(inst);
}

TEST(PathologicalTest, SingleCoreNoHardwareAlternatives) {
  // Pure software workload on one core: everything serializes.
  TaskGraph g;
  TimeT total = 0;
  for (int i = 0; i < 10; ++i) {
    const TaskId t = g.AddTask("sw" + std::to_string(i));
    g.AddImpl(t, SwImpl(1000 + 100 * i));
    total += 1000 + 100 * i;
  }
  Instance inst{"sw-only", testing::MakeSmallPlatform(1), std::move(g)};
  const Schedule s = SchedulePa(inst);
  ASSERT_TRUE(ValidateSchedule(inst, s).ok());
  EXPECT_EQ(s.makespan, total);
}

TEST(PathologicalTest, HugeImplsForceSoftwareFallback) {
  // HW impls fit the device but are so large only one region fits; with a
  // long parallel layer most tasks must fall back to software.
  TaskGraph g;
  for (int i = 0; i < 12; ++i) {
    const TaskId t = g.AddTask("big" + std::to_string(i));
    g.AddImpl(t, SwImpl(5000));
    g.AddImpl(t, HwImpl(800, 2900, 30, 50));
  }
  Instance inst{"huge", testing::MakeSmallPlatform(), std::move(g)};
  ExpectAllValid(inst);
}

TEST(PathologicalTest, ExtremeTimeScales) {
  // Mix microsecond tasks with multi-second tasks.
  TaskGraph g;
  const TaskId tiny = g.AddTask("tiny");
  g.AddImpl(tiny, SwImpl(1));
  g.AddImpl(tiny, HwImpl(1, 100));
  const TaskId huge = g.AddTask("huge");
  g.AddImpl(huge, SwImpl(30'000'000));  // 30 s
  g.AddImpl(huge, HwImpl(5'000'000, 2000));
  g.AddEdge(tiny, huge);
  Instance inst{"scales", MakeZedBoard(), std::move(g)};
  ExpectAllValid(inst);
}

TEST(PathologicalTest, ManyCoresFewTasks) {
  Instance inst{"cores", MakeZedBoard().WithProcessors(16),
                testing::MakeIndependent(4, 1000, 500, 2000)};
  ExpectAllValid(inst);
}

TEST(PathologicalTest, DeepDependenciesWithSharedModules) {
  // Chain where all tasks share one module: module reuse (IS-k) should
  // collapse reconfigurations entirely.
  TaskGraph g;
  for (int i = 0; i < 30; ++i) {
    const TaskId t = g.AddTask("m" + std::to_string(i));
    g.AddImpl(t, SwImpl(9000));
    g.AddImpl(t, HwImpl(1000, 1500, 0, 0, /*module=*/1));
    if (i > 0) g.AddEdge(static_cast<TaskId>(i - 1), t);
  }
  Instance inst{"mono", MakeZedBoard(), std::move(g)};
  IskOptions isk;
  isk.k = 1;
  const Schedule s = ScheduleIsk(inst, isk);
  ASSERT_TRUE(ValidateSchedule(inst, s).ok());
  EXPECT_TRUE(s.reconfigurations.empty());
  EXPECT_EQ(s.makespan, 30'000);
}

TEST(PathologicalTest, GeneratorExtremes) {
  // Degenerate generator configurations still produce valid instances.
  for (const std::size_t width : {1u, 50u}) {
    GeneratorOptions gen;
    gen.num_tasks = 50;
    gen.max_width = width;
    gen.max_parents = width == 1 ? 1 : 8;
    const Instance inst =
        GenerateInstance(MakeZedBoard(), gen, 3, "extreme");
    const Schedule s = SchedulePa(inst);
    EXPECT_TRUE(ValidateSchedule(inst, s).ok()) << "width " << width;
  }
}

}  // namespace
}  // namespace resched
