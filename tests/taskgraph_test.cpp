// Unit tests for the task-graph data structure and its validation rules.
#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::MakeChain;
using testing::MakeDiamond;
using testing::MakeSmallDevice;
using testing::SwImpl;

TEST(TaskGraphTest, AddTaskAssignsDenseIds) {
  TaskGraph g;
  EXPECT_EQ(g.AddTask("a"), 0);
  EXPECT_EQ(g.AddTask("b"), 1);
  EXPECT_EQ(g.NumTasks(), 2u);
  EXPECT_EQ(g.GetTask(0).name, "a");
}

TEST(TaskGraphTest, EdgesAndAdjacency) {
  TaskGraph g = MakeDiamond();
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.Successors(0).size(), 2u);
  EXPECT_EQ(g.Predecessors(3).size(), 2u);
}

TEST(TaskGraphTest, DuplicateEdgeIgnored) {
  TaskGraph g = MakeChain(2);
  const std::size_t before = g.NumEdges();
  g.AddEdge(0, 1);
  EXPECT_EQ(g.NumEdges(), before);
}

TEST(TaskGraphTest, SelfEdgeRejected) {
  TaskGraph g = MakeChain(2);
  EXPECT_THROW(g.AddEdge(0, 0), InternalError);
}

TEST(TaskGraphTest, OutOfRangeAccessRejected) {
  TaskGraph g = MakeChain(2);
  EXPECT_THROW((void)g.GetTask(5), InternalError);
  EXPECT_THROW(g.AddEdge(0, 7), InternalError);
  EXPECT_THROW((void)g.GetImpl(0, 99), InternalError);
}

TEST(TaskGraphTest, TopologicalOrderRespectsEdges) {
  TaskGraph g = MakeDiamond();
  const std::vector<TaskId> order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](TaskId t) {
    return std::find(order.begin(), order.end(), t) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(TaskGraphTest, CycleDetected) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  const TaskId b = g.AddTask("b");
  const TaskId c = g.AddTask("c");
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(c, a);
  EXPECT_THROW((void)g.TopologicalOrder(), InstanceError);
}

TEST(TaskGraphTest, ValidateAcceptsWellFormedGraph) {
  TaskGraph g = MakeDiamond();
  EXPECT_NO_THROW(g.Validate(MakeSmallDevice()));
}

TEST(TaskGraphTest, ValidateRejectsEmptyGraph) {
  TaskGraph g;
  EXPECT_THROW(g.Validate(MakeSmallDevice()), InstanceError);
}

TEST(TaskGraphTest, ValidateRejectsTaskWithoutImpls) {
  TaskGraph g;
  g.AddTask("a");
  EXPECT_THROW(g.Validate(MakeSmallDevice()), InstanceError);
}

TEST(TaskGraphTest, ValidateRejectsMissingSoftwareImpl) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  g.AddImpl(a, HwImpl(100, 50));
  EXPECT_THROW(g.Validate(MakeSmallDevice()), InstanceError);
}

TEST(TaskGraphTest, ValidateRejectsOversizedHardwareImpl) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  g.AddImpl(a, SwImpl(100));
  g.AddImpl(a, HwImpl(50, 1'000'000));  // larger than the whole device
  EXPECT_THROW(g.Validate(MakeSmallDevice()), InstanceError);
}

TEST(TaskGraphTest, ValidateRejectsWrongArityResources) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  g.AddImpl(a, SwImpl(100));
  Implementation bad;
  bad.kind = ImplKind::kHardware;
  bad.exec_time = 10;
  bad.res = ResourceVec({5});  // 1 kind instead of 3
  g.AddImpl(a, std::move(bad));
  EXPECT_THROW(g.Validate(MakeSmallDevice()), InstanceError);
}

TEST(TaskGraphTest, AddImplRejectsNonPositiveTime) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  Implementation impl = SwImpl(1);
  impl.exec_time = 0;
  EXPECT_THROW(g.AddImpl(a, impl), InternalError);
}

TEST(TaskGraphTest, SoftwareImplMustNotUseResources) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  Implementation impl = SwImpl(10);
  impl.res = ResourceVec({1, 0, 0});
  EXPECT_THROW(g.AddImpl(a, impl), InternalError);
}

TEST(TaskGraphTest, FastestSoftwareImpl) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  g.AddImpl(a, SwImpl(500, "slow"));
  g.AddImpl(a, HwImpl(10, 50));
  g.AddImpl(a, SwImpl(200, "fast"));
  EXPECT_EQ(g.FastestSoftwareImpl(a), 2u);
}

TEST(TaskGraphTest, FastestSoftwareImplThrowsWhenAbsent) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  g.AddImpl(a, HwImpl(10, 50));
  EXPECT_THROW((void)g.FastestSoftwareImpl(a), InstanceError);
}

TEST(TaskGraphTest, HardwareImpls) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  g.AddImpl(a, SwImpl(500));
  g.AddImpl(a, HwImpl(10, 50));
  g.AddImpl(a, HwImpl(20, 25));
  const auto hw = g.HardwareImpls(a);
  EXPECT_EQ(hw, (std::vector<std::size_t>{1, 2}));
}

TEST(TaskGraphTest, SerialLowerBoundSumsMinTimes) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  g.AddImpl(a, SwImpl(500));
  g.AddImpl(a, HwImpl(100, 10));
  const TaskId b = g.AddTask("b");
  g.AddImpl(b, SwImpl(300));
  EXPECT_EQ(g.SerialLowerBoundTime(), 400);
}

}  // namespace
}  // namespace resched
