#!/usr/bin/env bash
# End-to-end test of the resched_cli tool: generate -> schedule (every
# algorithm) -> persist -> validate -> render. Invoked by ctest with the
# CLI binary path as $1.
set -euo pipefail

CLI=$1
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# --- generation ------------------------------------------------------------
"$CLI" gen --tasks 15 --seed 3 --out "$TMP/i.json"
[ -s "$TMP/i.json" ] || fail "instance file not written"
grep -q '"resched-instance"' "$TMP/i.json" || fail "format marker missing"

# gen to stdout (capture first: grep -q + pipefail would SIGPIPE the CLI)
out=$("$CLI" gen --tasks 5 --seed 1)
echo "$out" | grep -q '"tasks"' || fail "gen stdout"

# --- scheduling with every algorithm ----------------------------------------
for algo in pa allsw is1 is5; do
  "$CLI" schedule --instance "$TMP/i.json" --algo "$algo" \
      --format summary > "$TMP/$algo.txt" || fail "schedule $algo"
  grep -q "makespan" "$TMP/$algo.txt" || fail "$algo summary lacks makespan"
done
out=$("$CLI" schedule --instance "$TMP/i.json" --algo par --budget 0.2 \
    --format summary 2>/dev/null)
echo "$out" | grep -q "PA-R" || fail "par summary"

# --- persisted schedule + validation ----------------------------------------
"$CLI" schedule --instance "$TMP/i.json" --algo pa --format json \
    --out "$TMP/s.json" > /dev/null
grep -q '"resched-schedule"' "$TMP/s.json" || fail "schedule format marker"
out=$("$CLI" validate --instance "$TMP/i.json" --schedule "$TMP/s.json")
echo "$out" | grep -q '^valid$' || fail "validate"

# A corrupted schedule must fail validation with non-zero exit.
sed 's/"makespan": \([0-9]*\)/"makespan": 1/' "$TMP/s.json" > "$TMP/bad.json"
if "$CLI" validate --instance "$TMP/i.json" --schedule "$TMP/bad.json" \
    > /dev/null 2>&1; then
  fail "corrupted schedule accepted"
fi

# --- renderers ---------------------------------------------------------------
out=$("$CLI" schedule --instance "$TMP/i.json" --algo pa --format gantt)
echo "$out" | grep -q "icap" || fail "gantt"
out=$("$CLI" schedule --instance "$TMP/i.json" --algo pa --format table)
echo "$out" | grep -q "start" || fail "table"
out=$("$CLI" schedule --instance "$TMP/i.json" --algo pa --format svg)
echo "$out" | grep -q "<svg" || fail "svg"
"$CLI" schedule --instance "$TMP/i.json" --algo pa --format summary \
    --svg-out "$TMP/g.svg" --floorplan-svg-out "$TMP/f.svg" > /dev/null
[ -s "$TMP/g.svg" ] || fail "svg-out"
[ -s "$TMP/f.svg" ] || fail "floorplan-svg-out"
out=$("$CLI" dot --instance "$TMP/i.json")
echo "$out" | grep -q "digraph" || fail "dot"

# --- extensions ---------------------------------------------------------------
"$CLI" schedule --instance "$TMP/i.json" --algo pa --module-reuse \
    --format summary > /dev/null || fail "module-reuse flag"
"$CLI" schedule --instance "$TMP/i.json" --algo pa --no-balancing \
    --no-floorplan --format summary > /dev/null || fail "ablation flags"

# --- info / new algorithms / unrolling ----------------------------------------
out=$("$CLI" info --instance "$TMP/i.json")
echo "$out" | grep -q "platform:" || fail "info platform"
echo "$out" | grep -q "graph:" || fail "info graph"
out=$("$CLI" schedule --instance "$TMP/i.json" --algo pals --budget 0.2 \
    --format summary 2>/dev/null)
echo "$out" | grep -q "PA-LS" || fail "pals summary"
out=$("$CLI" schedule --instance "$TMP/i.json" --algo grid \
    --format summary)
echo "$out" | grep -q "fixed-grid" || fail "grid summary"
out=$("$CLI" schedule --instance "$TMP/i.json" --algo pa --frames 2 \
    --metrics --format summary 2>"$TMP/err.txt")
grep -q "throughput" "$TMP/err.txt" || fail "frames throughput"
grep -q "parallelism" "$TMP/err.txt" || fail "metrics flag"

# --- STG import ----------------------------------------------------------------
STG_SAMPLE=$(dirname "$0")/../data/stg/rand0008.stg
if [ -f "$STG_SAMPLE" ]; then
  "$CLI" import-stg --stg "$STG_SAMPLE" --out "$TMP/stg.json"
  out=$("$CLI" info --instance "$TMP/stg.json")
  echo "$out" | grep -q "8 tasks" || fail "stg import task count"
  "$CLI" schedule --instance "$TMP/stg.json" --algo pa --format summary \
      > /dev/null || fail "stg schedule"
fi

# --- determinism: same seed => bit-for-bit identical output -------------------
# This is the regression guard behind the resched_lint determinism rules
# (no-std-rand, no-wall-clock-seed, no-argless-random-device,
# no-unordered-in-output): every output path must be a pure function of the
# instance and the seed.
"$CLI" gen --tasks 20 --seed 7 --out "$TMP/d1.json"
"$CLI" gen --tasks 20 --seed 7 --out "$TMP/d2.json"
cmp "$TMP/d1.json" "$TMP/d2.json" || fail "gen output differs for equal seeds"

for det_algo in pa is5 grid; do
  for fmt in table gantt svg summary; do
    "$CLI" schedule --instance "$TMP/d1.json" --algo "$det_algo" \
        --format "$fmt" > "$TMP/r1.txt" 2>/dev/null
    "$CLI" schedule --instance "$TMP/d1.json" --algo "$det_algo" \
        --format "$fmt" > "$TMP/r2.txt" 2>/dev/null
    cmp "$TMP/r1.txt" "$TMP/r2.txt" \
        || fail "$det_algo $fmt output differs across identical runs"
  done
done

# The JSON schedule embeds wall-clock solver timings (*_seconds); every other
# byte must be identical.
"$CLI" schedule --instance "$TMP/d1.json" --algo pa --format json \
    --out "$TMP/j1.json" > /dev/null
"$CLI" schedule --instance "$TMP/d1.json" --algo pa --format json \
    --out "$TMP/j2.json" > /dev/null
grep -v '_seconds' "$TMP/j1.json" > "$TMP/j1.flt"
grep -v '_seconds' "$TMP/j2.json" > "$TMP/j2.flt"
cmp "$TMP/j1.flt" "$TMP/j2.flt" || fail "pa json output differs beyond timings"

# --- faulted simulation -------------------------------------------------------
# Nominal replay of a valid schedule must survive with stretch <= 1.
out=$("$CLI" simulate --instance "$TMP/i.json" --schedule "$TMP/s.json")
echo "$out" | grep -q "survival: 100.0%" || fail "nominal simulate survival"

# Scenario round-trip: generate a seeded scenario, then replay it twice
# from the file — the runs must be bit-for-bit identical, and the replay
# must match the generating run's summary.
"$CLI" simulate --instance "$TMP/i.json" --schedule "$TMP/s.json" \
    --fault-rate 0.3 --seed 5 --jitter 0.2 --policy suffix \
    --scenario-out "$TMP/fs.json" > "$TMP/sim0.txt" \
    || fail "fault-rate simulate"
grep -q '"resched-faults"' "$TMP/fs.json" || fail "scenario format marker"
"$CLI" simulate --instance "$TMP/i.json" --schedule "$TMP/s.json" \
    --faults "$TMP/fs.json" --seed 5 --jitter 0.2 --policy suffix \
    > "$TMP/sim1.txt" || fail "scenario replay"
"$CLI" simulate --instance "$TMP/i.json" --schedule "$TMP/s.json" \
    --faults "$TMP/fs.json" --seed 5 --jitter 0.2 --policy suffix \
    > "$TMP/sim2.txt" || fail "scenario replay (second run)"
cmp "$TMP/sim1.txt" "$TMP/sim2.txt" \
    || fail "faulted replay differs across identical runs"
cmp "$TMP/sim0.txt" "$TMP/sim1.txt" \
    || fail "scenario file replay differs from generating run"

# Every recovery policy survives the same scenario.
for policy in retry swfallback suffix; do
  "$CLI" simulate --instance "$TMP/i.json" --schedule "$TMP/s.json" \
      --faults "$TMP/fs.json" --policy "$policy" > /dev/null \
      || fail "policy $policy did not survive"
done

# --faults and --fault-rate are mutually exclusive.
"$CLI" simulate --instance "$TMP/i.json" --schedule "$TMP/s.json" \
    --faults "$TMP/fs.json" --fault-rate 0.1 > /dev/null 2>&1 \
    && fail "conflicting fault flags accepted"

# --- error handling -----------------------------------------------------------
"$CLI" schedule --instance "$TMP/i.json" --algo bogus > /dev/null 2>&1 \
    && fail "bogus algo accepted"
"$CLI" schedule --algo pa > /dev/null 2>&1 && fail "missing instance accepted"
"$CLI" frobnicate > /dev/null 2>&1 && fail "unknown command accepted"

echo "cli_test OK"
