// Property-based tests: randomized sweeps asserting structural invariants
// rather than concrete values.
//
//   * CPM windows satisfy every precedence/gap/release constraint and the
//     criticality definition on random DAGs with random ordering edges;
//   * JSON values round-trip through Dump/Parse for every indent mode;
//   * the floorplanner agrees with an independent brute-force oracle on
//     tiny fabrics;
//   * the validator never crashes on randomly mutated schedules and stays
//     deterministic.
#include <gtest/gtest.h>

#include "core/pa_scheduler.hpp"
#include "floorplan/floorplanner.hpp"
#include "sched/validator.hpp"
#include "sim/executor.hpp"
#include "sim/faults.hpp"
#include "taskgraph/generator.hpp"
#include "taskgraph/timing.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace resched {
namespace {

// ---------------------------------------------------------------- timing

class TimingPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimingPropertySweep, WindowInvariantsHold) {
  Rng rng(GetParam());

  // Random DAG.
  const auto n = static_cast<std::size_t>(rng.UniformInt(2, 30));
  TaskGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId t = g.AddTask("t" + std::to_string(i));
    g.AddImpl(t, testing::SwImpl(rng.UniformInt(1, 500)));
  }
  for (std::size_t b = 1; b < n; ++b) {
    const auto parents = static_cast<std::size_t>(rng.UniformInt(0, 2));
    for (std::size_t k = 0; k < parents; ++k) {
      g.AddEdge(static_cast<TaskId>(
                    rng.UniformInt(0, static_cast<std::int64_t>(b) - 1)),
                static_cast<TaskId>(b));
    }
  }

  TimingContext timing(g);
  for (std::size_t t = 0; t < n; ++t) {
    timing.SetExecTime(static_cast<TaskId>(t), rng.UniformInt(1, 500));
  }
  // Random base edge gaps and releases.
  for (std::size_t t = 0; t < n; ++t) {
    for (const TaskId s : g.Successors(static_cast<TaskId>(t))) {
      if (rng.Bernoulli(0.3)) {
        timing.SetBaseEdgeGap(static_cast<TaskId>(t), s,
                              rng.UniformInt(0, 50));
      }
    }
    if (rng.Bernoulli(0.2)) {
      timing.RaiseRelease(static_cast<TaskId>(t), rng.UniformInt(0, 300));
    }
  }
  // Random (acyclic) extra ordering edges: only lower id -> higher id.
  for (int k = 0; k < 5; ++k) {
    const auto a = static_cast<TaskId>(
        rng.UniformInt(0, static_cast<std::int64_t>(n) - 2));
    const auto b = static_cast<TaskId>(
        rng.UniformInt(a + 1, static_cast<std::int64_t>(n) - 1));
    try {
      timing.AddOrderingEdge(a, b, rng.UniformInt(0, 40));
    } catch (const InternalError&) {
      // Edge would close a cycle against a base edge; skip.
    }
  }

  const TimeWindows& win = timing.Windows();

  TimeT max_end = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const TimeT es = win.earliest_start[t];
    const TimeT lf = win.latest_finish[t];
    const TimeT exec = timing.ExecTime(static_cast<TaskId>(t));
    // Window sanity.
    EXPECT_GE(es, timing.Release(static_cast<TaskId>(t)));
    EXPECT_GE(lf - es, exec);
    EXPECT_EQ(win.critical[t], lf - es == exec);
    max_end = std::max(max_end, es + exec);
  }
  EXPECT_EQ(win.makespan, max_end);

  // Edge constraints on earliest starts AND latest finishes.
  for (std::size_t a = 0; a < n; ++a) {
    const TimeT exec_a = timing.ExecTime(static_cast<TaskId>(a));
    for (const TaskId b : g.Successors(static_cast<TaskId>(a))) {
      const auto bi = static_cast<std::size_t>(b);
      const TimeT gap = timing.BaseEdgeGap(static_cast<TaskId>(a), b);
      EXPECT_GE(win.earliest_start[bi],
                win.earliest_start[a] + exec_a + gap);
      EXPECT_LE(win.latest_finish[a] + gap +
                    timing.ExecTime(b),
                win.latest_finish[bi]);
    }
  }
  for (const OrderingEdge& e : timing.ExtraEdges()) {
    const auto ai = static_cast<std::size_t>(e.from);
    const auto bi = static_cast<std::size_t>(e.to);
    EXPECT_GE(win.earliest_start[bi],
              win.earliest_start[ai] +
                  timing.ExecTime(e.from) + e.gap);
  }

  // A critical task attains time 0 and another attains the makespan.
  bool critical_at_zero = false;
  bool critical_at_end = false;
  for (std::size_t t = 0; t < n; ++t) {
    if (!win.critical[t]) continue;
    // With releases, the earliest critical start is the release, not
    // necessarily 0; check end attainment only.
    if (win.earliest_start[t] + timing.ExecTime(static_cast<TaskId>(t)) ==
        win.makespan) {
      critical_at_end = true;
    }
    critical_at_zero = true;
  }
  EXPECT_TRUE(critical_at_zero);  // some critical task exists
  EXPECT_TRUE(critical_at_end);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingPropertySweep,
                         ::testing::Range<std::uint64_t>(1, 25));

// ---------------------------------------------------------------- json

JsonValue RandomJson(Rng& rng, int depth) {
  const std::int64_t kind = rng.UniformInt(0, depth <= 0 ? 4 : 6);
  switch (kind) {
    case 0: return JsonValue(nullptr);
    case 1: return JsonValue(rng.Bernoulli(0.5));
    case 2: return JsonValue(rng.UniformInt(-1'000'000'000, 1'000'000'000));
    case 3: {
      // Dyadic doubles survive round-trip exactly.
      return JsonValue(static_cast<double>(rng.UniformInt(-4096, 4096)) /
                       64.0);
    }
    case 4: {
      std::string s;
      const auto len = static_cast<std::size_t>(rng.UniformInt(0, 12));
      for (std::size_t i = 0; i < len; ++i) {
        // Mix printable ASCII with characters needing escapes.
        const char* pool = "ab\"\\\n\t {}[]:,\xC3\xA9";
        s += pool[static_cast<std::size_t>(
            rng.UniformInt(0, 13))];
      }
      return JsonValue(std::move(s));
    }
    case 5: {
      JsonArray arr;
      const auto len = static_cast<std::size_t>(rng.UniformInt(0, 4));
      for (std::size_t i = 0; i < len; ++i) {
        arr.push_back(RandomJson(rng, depth - 1));
      }
      return JsonValue(std::move(arr));
    }
    default: {
      JsonObject obj;
      const auto len = static_cast<std::size_t>(rng.UniformInt(0, 4));
      for (std::size_t i = 0; i < len; ++i) {
        obj.emplace("k" + std::to_string(i), RandomJson(rng, depth - 1));
      }
      return JsonValue(std::move(obj));
    }
  }
}

class JsonRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonRoundTripSweep, DumpParseIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const JsonValue v = RandomJson(rng, 3);
    for (const int indent : {-1, 0, 2, 4}) {
      const JsonValue back = JsonValue::Parse(v.Dump(indent));
      EXPECT_EQ(back, v) << v.Dump(2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripSweep,
                         ::testing::Range<std::uint64_t>(100, 108));

// ---------------------------------------------------------------- floorplan

/// Independent brute-force feasibility oracle: enumerates ALL rectangles
/// per region (not just minimal ones) and tries every combination.
bool BruteForceFeasible(const FpgaDevice& device,
                        const std::vector<ResourceVec>& regions) {
  const Fabric fabric(device);
  std::vector<std::vector<Rect>> all(regions.size());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    for (std::size_t h = 1; h <= fabric.Rows(); ++h) {
      for (std::size_t r0 = 0; r0 + h <= fabric.Rows(); ++r0) {
        for (std::size_t c0 = 0; c0 < fabric.Columns(); ++c0) {
          for (std::size_t w = 1; c0 + w <= fabric.Columns(); ++w) {
            if (regions[i].FitsWithin(fabric.RectResources(c0, w, h))) {
              all[i].push_back(Rect{c0, r0, w, h});
            }
          }
        }
      }
    }
    if (all[i].empty()) return false;
  }
  // DFS over combinations.
  std::vector<Rect> chosen(regions.size());
  std::function<bool(std::size_t)> dfs = [&](std::size_t depth) {
    if (depth == regions.size()) return true;
    for (const Rect& rect : all[depth]) {
      bool clash = false;
      for (std::size_t d = 0; d < depth; ++d) {
        if (rect.Overlaps(chosen[d])) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      chosen[depth] = rect;
      if (dfs(depth + 1)) return true;
    }
    return false;
  };
  return dfs(0);
}

class FloorplanOracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FloorplanOracleSweep, MatchesBruteForce) {
  Rng rng(GetParam());
  // Tiny random fabric: 4-7 columns x 2 rows.
  const ResourceModel model = MakeClbBramDspModel();
  FabricGeometry geom;
  geom.rows = 2;
  const auto cols = static_cast<std::size_t>(rng.UniformInt(4, 7));
  for (std::size_t c = 0; c < cols; ++c) {
    const auto kind =
        static_cast<ResourceKind>(rng.UniformInt(0, 2));
    const std::int64_t units = kind == 0 ? 100 : (kind == 1 ? 10 : 20);
    geom.columns.push_back(ColumnSpec{kind, units});
  }
  // Ensure at least one CLB column so CLB demands are satisfiable.
  geom.columns[0] = ColumnSpec{0, 100};
  const FpgaDevice device("tiny", model, geom);

  // 1-3 random regions.
  const auto num_regions = static_cast<std::size_t>(rng.UniformInt(1, 3));
  std::vector<ResourceVec> regions;
  for (std::size_t i = 0; i < num_regions; ++i) {
    ResourceVec r({rng.UniformInt(50, 250),
                   rng.Bernoulli(0.4) ? rng.UniformInt(1, 15) : 0,
                   rng.Bernoulli(0.4) ? rng.UniformInt(1, 25) : 0});
    regions.push_back(r);
  }

  FloorplanOptions options;
  options.max_nodes = 0;
  options.time_budget_seconds = 0.0;  // exhaustive
  const FloorplanResult got = FindFloorplan(device, regions, options);
  ASSERT_FALSE(got.budget_exhausted);
  const bool expected = BruteForceFeasible(device, regions);
  EXPECT_EQ(got.feasible, expected);
  if (got.feasible) {
    EXPECT_TRUE(IsValidFloorplan(device, regions, got.rects));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloorplanOracleSweep,
                         ::testing::Range<std::uint64_t>(200, 230));

// ---------------------------------------------------------------- validator

class ValidatorFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValidatorFuzzSweep, MutationsNeverCrashAndStayDeterministic) {
  Rng rng(GetParam());
  GeneratorOptions gen;
  gen.num_tasks = 15;
  const Instance inst =
      GenerateInstance(MakeZedBoard(), gen, GetParam(), "fuzz");
  const Schedule base = SchedulePa(inst);
  ASSERT_TRUE(ValidateSchedule(inst, base).ok());

  for (int i = 0; i < 40; ++i) {
    Schedule mutated = base;
    const std::int64_t mutation = rng.UniformInt(0, 5);
    const auto t = static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(mutated.task_slots.size()) - 1));
    switch (mutation) {
      case 0: {  // shift a slot
        const TimeT delta = rng.UniformInt(-5000, 5000);
        mutated.task_slots[t].start += delta;
        mutated.task_slots[t].end += delta;
        break;
      }
      case 1:  // change slot length
        mutated.task_slots[t].end += rng.UniformInt(1, 1000);
        break;
      case 2:  // retarget
        mutated.task_slots[t].target_index += 1;
        break;
      case 3:  // drop a reconfiguration
        if (!mutated.reconfigurations.empty()) {
          mutated.reconfigurations.pop_back();
        }
        break;
      case 4:  // shrink a region
        if (!mutated.regions.empty()) {
          mutated.regions[0].res = mutated.regions[0].res.ScaledDown(0.5);
        }
        break;
      default:  // corrupt the makespan
        mutated.makespan += rng.UniformInt(1, 100);
    }
    const ValidationResult first = ValidateSchedule(inst, mutated);
    const ValidationResult second = ValidateSchedule(inst, mutated);
    EXPECT_EQ(first.violations, second.violations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorFuzzSweep,
                         ::testing::Range<std::uint64_t>(300, 308));

// ---------------------------------------------------------------- schedulers

class SchedulerInvariantSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerInvariantSweep, PaInvariantsOnRandomShapes) {
  Rng rng(GetParam());
  GeneratorOptions gen;
  gen.num_tasks = static_cast<std::size_t>(rng.UniformInt(3, 60));
  gen.max_width = static_cast<std::size_t>(rng.UniformInt(1, 12));
  gen.sw_slowdown_lo = 1.5;
  gen.sw_slowdown_hi = rng.UniformDouble(2.0, 8.0);
  gen.share_prob = rng.UniformDouble(0.0, 0.5);
  const Instance inst =
      GenerateInstance(MakeZedBoard(), gen, GetParam() * 7919, "shape");
  const Schedule s = SchedulePa(inst);
  const ValidationResult r = ValidateSchedule(inst, s);
  EXPECT_TRUE(r.ok()) << "n=" << gen.num_tasks << "\n" << r.Summary();
  // Makespan bounded below by every task's fastest implementation.
  for (std::size_t t = 0; t < inst.graph.NumTasks(); ++t) {
    EXPECT_GE(s.makespan,
              s.task_slots[t].end - s.task_slots[t].start);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerInvariantSweep,
                         ::testing::Range<std::uint64_t>(400, 420));

// ----------------------------------------------------------------- simulator

class SimulatorPropertySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorPropertySweep, ZeroJitterZeroFaultNeverStretches) {
  // With nominal durations and no faults the replay can only compact
  // schedule slack, and the explicitly-empty scenario must reproduce the
  // default (pre-fault) executor bit for bit.
  GeneratorOptions gen;
  gen.num_tasks = 25 + GetParam() % 20;
  const Instance inst =
      GenerateInstance(MakeZedBoard(), gen, GetParam(), "simprop");
  const Schedule s = SchedulePa(inst);
  const sim::SimResult base = sim::Simulate(inst, s);
  EXPECT_LE(base.stretch, 1.0);
  EXPECT_LE(base.makespan, s.makespan);

  sim::SimOptions empty_scenario;
  empty_scenario.faults = sim::FaultScenario{};
  const sim::SimResult same = sim::Simulate(inst, s, empty_scenario);
  EXPECT_EQ(base.makespan, same.makespan);
  EXPECT_EQ(base.task_start, same.task_start);
  EXPECT_EQ(base.task_end, same.task_end);
}

TEST_P(SimulatorPropertySweep, FaultedReplaySurvivesRandomShapes) {
  Rng rng(GetParam() ^ 0xFA017);
  GeneratorOptions gen;
  gen.num_tasks = static_cast<std::size_t>(rng.UniformInt(5, 45));
  gen.max_width = static_cast<std::size_t>(rng.UniformInt(1, 10));
  const Instance inst =
      GenerateInstance(MakeZedBoard(), gen, GetParam() * 104729, "simshape");
  const Schedule s = SchedulePa(inst);
  sim::SimOptions opt;
  opt.task_jitter = 0.3;
  opt.reconf_jitter = 0.3;
  opt.seed = DeriveSeed(kJitterSeedStream, GetParam());
  opt.faults = sim::GenerateFaultScenario(
      s, sim::UniformFaultRates(0.35), DeriveSeed(kFaultSeedStream, GetParam()));
  opt.recovery.policy = static_cast<RecoveryPolicy>(GetParam() % 3);
  const sim::SimResult r = sim::Simulate(inst, s, opt);
  EXPECT_TRUE(r.recovery.survived);
  ValidationOptions vopt;
  vopt.executed = true;
  vopt.outages = sim::OutagesFromScenario(opt.faults);
  const ValidationResult v = ValidateSchedule(inst, r.executed, vopt);
  EXPECT_TRUE(v.ok()) << v.Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPropertySweep,
                         ::testing::Range<std::uint64_t>(500, 515));

}  // namespace
}  // namespace resched
