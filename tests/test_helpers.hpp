// Shared fixtures and builders for the test suite.
#pragma once

#include <string>

#include "arch/zynq.hpp"
#include "taskgraph/taskgraph.hpp"
#include "util/string_util.hpp"

namespace resched::testing {

/// Small fast device (1/4-ish of an XC7Z020) so floorplan queries in tests
/// stay in the microsecond range.
inline FpgaDevice MakeSmallDevice() {
  const ResourceModel model = MakeClbBramDspModel();
  FabricGeometry geom = BuildInterleavedFabric(
      model, ResourceVec({3200, 40, 60}), {100, 10, 20}, /*rows=*/4);
  return FpgaDevice("test-device", model, std::move(geom));
}

inline Platform MakeSmallPlatform(std::size_t cores = 2,
                                  double recfreq = 2.56e8) {
  return Platform("test-platform", cores, MakeSmallDevice(), recfreq);
}

inline Implementation SwImpl(TimeT time, std::string name = "sw") {
  Implementation impl;
  impl.kind = ImplKind::kSoftware;
  impl.name = std::move(name);
  impl.exec_time = time;
  return impl;
}

inline Implementation HwImpl(TimeT time, std::int64_t clb,
                             std::int64_t bram = 0, std::int64_t dsp = 0,
                             std::int32_t module_id = -1,
                             std::string name = "hw") {
  Implementation impl;
  impl.kind = ImplKind::kHardware;
  impl.name = std::move(name);
  impl.exec_time = time;
  impl.res = ResourceVec({clb, bram, dsp});
  impl.module_id = module_id;
  return impl;
}

/// Linear chain t0 -> t1 -> ... -> t{n-1}; every task gets one SW and one
/// HW implementation.
inline TaskGraph MakeChain(std::size_t n, TimeT hw_time = 1000,
                           std::int64_t clb = 500, TimeT sw_time = 4000) {
  TaskGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId t = g.AddTask(StrFormat("c%zu", i));
    g.AddImpl(t, SwImpl(sw_time));
    g.AddImpl(t, HwImpl(hw_time, clb));
    if (i > 0) g.AddEdge(static_cast<TaskId>(i - 1), t);
  }
  return g;
}

/// Diamond: a -> {b, c} -> d.
inline TaskGraph MakeDiamond(TimeT hw_time = 1000, std::int64_t clb = 500,
                             TimeT sw_time = 4000) {
  TaskGraph g;
  const TaskId a = g.AddTask("a");
  const TaskId b = g.AddTask("b");
  const TaskId c = g.AddTask("c");
  const TaskId d = g.AddTask("d");
  for (const TaskId t : {a, b, c, d}) {
    g.AddImpl(t, SwImpl(sw_time));
    g.AddImpl(t, HwImpl(hw_time, clb));
  }
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(b, d);
  g.AddEdge(c, d);
  return g;
}

/// Independent (edge-free) tasks.
inline TaskGraph MakeIndependent(std::size_t n, TimeT hw_time = 1000,
                                 std::int64_t clb = 500,
                                 TimeT sw_time = 4000) {
  TaskGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId t = g.AddTask(StrFormat("p%zu", i));
    g.AddImpl(t, SwImpl(sw_time));
    g.AddImpl(t, HwImpl(hw_time, clb));
  }
  return g;
}

}  // namespace resched::testing
