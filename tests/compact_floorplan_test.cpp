// Tests for the optimizing (compact) floorplanner.
#include <gtest/gtest.h>

#include "floorplan/floorplanner.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::MakeSmallDevice;

TEST(CompactFloorplanTest, EmptyIsFeasible) {
  const auto result = FindCompactFloorplan(MakeSmallDevice(), {});
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.occupied_cells, 0u);
}

TEST(CompactFloorplanTest, AgreesWithFeasibilityOnYesInstances) {
  const FpgaDevice device = MakeSmallDevice();
  const std::vector<ResourceVec> regions{ResourceVec({400, 4, 0}),
                                         ResourceVec({600, 0, 10}),
                                         ResourceVec({300, 0, 0})};
  const auto feas = FindFloorplan(device, regions);
  const auto compact = FindCompactFloorplan(device, regions);
  ASSERT_TRUE(feas.feasible);
  ASSERT_TRUE(compact.feasible);
  EXPECT_TRUE(IsValidFloorplan(device, regions, compact.rects));
}

TEST(CompactFloorplanTest, NeverWorseThanFeasibilitySolution) {
  const FpgaDevice device = MakeSmallDevice();
  const std::vector<ResourceVec> regions{ResourceVec({500, 0, 0}),
                                         ResourceVec({700, 6, 8}),
                                         ResourceVec({200, 2, 0}),
                                         ResourceVec({400, 0, 12})};
  const auto feas = FindFloorplan(device, regions);
  ASSERT_TRUE(feas.feasible);
  std::size_t feas_cells = 0;
  for (const Rect& r : feas.rects) feas_cells += r.Area();

  const auto compact = FindCompactFloorplan(device, regions);
  ASSERT_TRUE(compact.feasible);
  EXPECT_LE(compact.occupied_cells, feas_cells);

  std::size_t recount = 0;
  for (const Rect& r : compact.rects) recount += r.Area();
  EXPECT_EQ(recount, compact.occupied_cells);
}

TEST(CompactFloorplanTest, FindsMinimalSingleRegion) {
  // One 100-CLB region on the small device: a single CLB column cell (100
  // units) suffices, so the optimum occupies exactly 1 cell.
  const FpgaDevice device = MakeSmallDevice();
  const auto result =
      FindCompactFloorplan(device, {ResourceVec({100, 0, 0})});
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_EQ(result.occupied_cells, 1u);
}

TEST(CompactFloorplanTest, InfeasibleStaysInfeasible) {
  const FpgaDevice device = MakeSmallDevice();
  std::vector<ResourceVec> regions(3, device.Capacity());
  const auto result = FindCompactFloorplan(device, regions);
  EXPECT_FALSE(result.feasible);
}

TEST(CompactFloorplanTest, BudgetExhaustionReported) {
  const FpgaDevice device = MakeXc7z020();
  std::vector<ResourceVec> regions(7, ResourceVec({1500, 12, 20}));
  FloorplanOptions options;
  options.max_nodes = 2000;  // too small to prove optimality
  const auto result = FindCompactFloorplan(device, regions, options);
  if (result.feasible) {
    EXPECT_TRUE(IsValidFloorplan(device, regions, result.rects));
  }
  // With such a small budget the search cannot certify the optimum.
  EXPECT_TRUE(result.budget_exhausted || !result.feasible);
}

}  // namespace
}  // namespace resched
