// Unit tests for the text renderers (table, Gantt, summary).
#include <gtest/gtest.h>

#include "core/pa_scheduler.hpp"
#include "sched/gantt.hpp"
#include "sched/validator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

using testing::HwImpl;
using testing::MakeSmallPlatform;
using testing::SwImpl;

struct Fixture {
  Instance instance;
  Schedule schedule;

  Fixture() {
    TaskGraph g;
    const TaskId a = g.AddTask("alpha");
    const TaskId b = g.AddTask("beta");
    g.AddEdge(a, b);
    g.AddImpl(a, SwImpl(9000));
    g.AddImpl(a, HwImpl(1000, 400));
    g.AddImpl(b, SwImpl(800));
    instance = Instance{"fx", MakeSmallPlatform(), std::move(g)};
    schedule = SchedulePa(instance);
    RESCHED_CHECK(ValidateSchedule(instance, schedule).ok());
  }
};

TEST(GanttTest, TableHasHeaderAndOneRowPerSlot) {
  const Fixture f;
  const std::string table = ScheduleTable(f.instance, f.schedule);
  // Header.
  EXPECT_NE(table.find("start"), std::string::npos);
  EXPECT_NE(table.find("where"), std::string::npos);
  // One line per task plus header (no reconfigurations here).
  const auto lines = Split(table, '\n');
  EXPECT_EQ(lines.size(),
            1 + f.schedule.task_slots.size() +
                f.schedule.reconfigurations.size() + 1);  // trailing ""
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
}

TEST(GanttTest, TableListsReconfigurations) {
  TaskGraph g = testing::MakeChain(5, 3000, 1500, 60000);
  Instance inst{"r", MakeSmallPlatform(), std::move(g)};
  const Schedule s = SchedulePa(inst);
  ASSERT_FALSE(s.reconfigurations.empty());
  const std::string table = ScheduleTable(inst, s);
  EXPECT_NE(table.find("reconf"), std::string::npos);
  EXPECT_NE(table.find("loads"), std::string::npos);
}

TEST(GanttTest, ChartHasOneLanePerResource) {
  const Fixture f;
  const std::string chart = GanttChart(f.instance, f.schedule, 60);
  const auto lines = Split(chart, '\n');
  // cores + regions + icap + axis + trailing "".
  EXPECT_EQ(lines.size(), f.instance.platform.NumProcessors() +
                              f.schedule.regions.size() + 1 + 1 + 1);
  EXPECT_NE(chart.find("cpu0"), std::string::npos);
  EXPECT_NE(chart.find("cpu1"), std::string::npos);
  EXPECT_NE(chart.find("icap"), std::string::npos);
}

TEST(GanttTest, ChartRowsHaveRequestedWidth) {
  const Fixture f;
  const std::size_t width = 48;
  const std::string chart = GanttChart(f.instance, f.schedule, width);
  for (const std::string& line : Split(chart, '\n')) {
    const auto bar_start = line.find('|');
    if (bar_start == std::string::npos) continue;
    const auto bar_end = line.rfind('|');
    ASSERT_NE(bar_end, bar_start);
    EXPECT_EQ(bar_end - bar_start - 1, width);
  }
}

TEST(GanttTest, ChartShowsAxisEndingAtMakespan) {
  const Fixture f;
  const std::string chart = GanttChart(f.instance, f.schedule, 60);
  EXPECT_NE(chart.find(FormatTicks(f.schedule.makespan)),
            std::string::npos);
}

TEST(GanttTest, SummaryForUncheckedFloorplan) {
  Fixture f;
  f.schedule.floorplan_checked = false;
  const std::string summary = ScheduleSummary(f.instance, f.schedule);
  EXPECT_NE(summary.find("unchecked"), std::string::npos);
}

TEST(GanttTest, SummaryForMissingFloorplan) {
  Fixture f;
  ASSERT_FALSE(f.schedule.regions.empty());
  f.schedule.floorplan.clear();
  f.schedule.floorplan_checked = true;
  const std::string summary = ScheduleSummary(f.instance, f.schedule);
  EXPECT_NE(summary.find("NOT FOUND"), std::string::npos);
}

TEST(GanttTest, ZeroMakespanDoesNotDivideByZero) {
  // Degenerate schedule object (empty) — renderers must not crash.
  Instance inst{"empty", MakeSmallPlatform(), testing::MakeChain(1)};
  Schedule s;
  s.task_slots.resize(1);
  s.task_slots[0] = TaskSlot{0, 0, TargetKind::kProcessor, 0, 0, 4000};
  s.makespan = 4000;
  s.algorithm = "hand";
  EXPECT_NO_THROW((void)GanttChart(inst, s, 40));
  EXPECT_NO_THROW((void)ScheduleTable(inst, s));
}

}  // namespace
}  // namespace resched
