#!/usr/bin/env bash
# kill -9 chaos harness for the reschedd journal + warm start, through the
# real CLI binary ($1). Each cycle:
#
#   1. starts `serve --socket` with a deterministic journal crash point
#      (RESCHED_IO_FAULTS crash_at=K: after K cumulative journal bytes the
#      daemon writes the partial prefix and dies with exit 137 — kill -9
#      landing mid-write), submits fresh work, then kill -9s whatever is
#      left anyway;
#   2. restarts with --warm-start over the same (possibly torn) journal
#      and resubmits the same request lines.
#
# Asserted invariants, per cycle and across the whole run:
#   * the warm-started daemon answers every resubmission ok — a torn tail
#     never wedges a restart;
#   * any response observed before the crash is reproduced byte-for-byte;
#   * no id is ever executed twice (at most one "served":"exec" journal
#     record per id across the entire crash history);
#   * the surviving journal replays with zero mismatches.
#
# RESCHED_CRASH_CYCLES overrides the cycle count (default 100; ctest runs
# a reduced count, CI's Release job runs the full hundred).
set -euo pipefail

CLI=$1
CYCLES=${RESCHED_CRASH_CYCLES:-100}
TMP=$(mktemp -d)
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

J="$TMP/journal.jsonl"
SOCK="$TMP/reschedd.sock"

wait_sock() {
  for _ in $(seq 1 200); do
    [ -S "$SOCK" ] && return 0
    sleep 0.05
  done
  fail "server socket never appeared"
}

"$CLI" gen --tasks 8 --seed 11 --out "$TMP/i.json"

for ((c = 0; c < CYCLES; c++)); do
  # Sweep the crash point across a cycle's journal footprint so meta,
  # request and response appends all get hit over a full run.
  offset=$((64 + (c * 7919) % 24000))

  # --- crash phase -----------------------------------------------------------
  RESCHED_IO_FAULTS="seed=$c,crash_at=$offset" \
    "$CLI" serve --socket "$SOCK" --workers 2 --journal "$J" \
      --journal-sync always --warm-start "$J" 2> "$TMP/srv_a.log" &
  SRV_PID=$!
  wait_sock
  for k in 1 2; do
    id="c$c-$k"
    # The crash is the expected outcome; a failed submit is not an error.
    "$CLI" submit --socket "$SOCK" --instance "$TMP/i.json" --id "$id" \
        --seed $((c * 2 + k)) --retries 1 \
        > "$TMP/resp_a_$k" 2>/dev/null || true
  done
  # Whatever survived the planted crash point gets a real kill -9.
  kill -9 "$SRV_PID" 2>/dev/null || true
  wait "$SRV_PID" 2>/dev/null || true
  SRV_PID=""
  rm -f "$SOCK"

  # --- recovery phase --------------------------------------------------------
  "$CLI" serve --socket "$SOCK" --workers 2 --journal "$J" \
      --journal-sync always --warm-start "$J" 2> "$TMP/srv_b.log" &
  SRV_PID=$!
  wait_sock
  for k in 1 2; do
    id="c$c-$k"
    "$CLI" submit --socket "$SOCK" --instance "$TMP/i.json" --id "$id" \
        --seed $((c * 2 + k)) --retries 5 \
        > "$TMP/resp_b_$k" 2>/dev/null \
        || fail "cycle $c: recovery submit of $id failed"
    grep -q '"ok":true' "$TMP/resp_b_$k" \
        || fail "cycle $c: recovery response for $id not ok"
    # A response the client saw before the crash must be reproduced
    # byte-identically by the warm-started daemon, not recomputed ad hoc.
    if [ -s "$TMP/resp_a_$k" ] && grep -q '"ok":true' "$TMP/resp_a_$k"; then
      cmp -s "$TMP/resp_a_$k" "$TMP/resp_b_$k" \
          || fail "cycle $c: response for $id changed across the crash"
    fi
    rm -f "$TMP/resp_a_$k" "$TMP/resp_b_$k"
  done
  if [ "$c" -gt 0 ]; then
    grep -q "warm start:" "$TMP/srv_b.log" \
        || fail "cycle $c: recovery daemon printed no warm-start summary"
  fi
  "$CLI" submit --socket "$SOCK" --verb shutdown > /dev/null 2>&1 \
      || fail "cycle $c: graceful shutdown failed"
  wait "$SRV_PID" || fail "cycle $c: recovery server exited non-zero"
  SRV_PID=""
  rm -f "$SOCK"
done

# --- whole-history invariants -------------------------------------------------
# Zero duplicated executions: at most one "served":"exec" record per id.
# (The journal-record payload is a JSON object in key order, so the id is
# the first field of every framed response record.)
dups=$(grep '"served":"exec"' "$J" \
    | sed -n 's/.*{"id":"\([^"]*\)".*/\1/p' | sort | uniq -d)
[ -z "$dups" ] || fail "ids executed more than once: $dups"
execs=$(grep -c '"served":"exec"' "$J")
[ "$execs" -eq $((CYCLES * 2)) ] \
    || fail "expected $((CYCLES * 2)) executions in the journal, got $execs"

# The surviving journal replays byte-identically end to end.
out=$("$CLI" replay --journal "$J") || fail "replay reported mismatches"
echo "$out" | grep -q " 0 mismatched" || fail "replay summary: $out"

echo "service_crash_test OK ($CYCLES cycles, $execs unique executions)"
