// Unit tests for the utility substrate: RNG, statistics, JSON, CSV,
// strings, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace resched {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(3, 3), 3);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.UniformInt(5, 4), InternalError);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleChangesOrderEventually) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  bool changed = false;
  for (int i = 0; i < 10 && !changed; ++i) {
    std::vector<int> s = v;
    rng.Shuffle(s);
    changed = s != v;
  }
  EXPECT_TRUE(changed);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, WeightedIndexRejectsDegenerate) {
  Rng rng(1);
  std::vector<double> empty;
  EXPECT_THROW((void)rng.WeightedIndex(empty), InternalError);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)rng.WeightedIndex(zeros), InternalError);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child1 = parent.Split();
  Rng child2 = parent.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.Next() == child2.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, DeriveSeedIsDeterministic) {
  EXPECT_EQ(DeriveSeed(kJitterSeedStream, 7), DeriveSeed(kJitterSeedStream, 7));
  EXPECT_NE(DeriveSeed(kJitterSeedStream, 7), DeriveSeed(kJitterSeedStream, 8));
}

TEST(RngTest, DeriveSeedSeparatesStreams) {
  // The same trial index in different streams must yield unrelated seeds —
  // this is what keeps jitter draws and fault draws uncorrelated.
  EXPECT_NE(DeriveSeed(kJitterSeedStream, 0), DeriveSeed(kFaultSeedStream, 0));
  int equal = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (DeriveSeed(kJitterSeedStream, i) == DeriveSeed(kFaultSeedStream, i)) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

// ---------------------------------------------------------------- stats

TEST(StatsTest, RunningStatBasics) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.StdDev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(StatsTest, EmptyStatIsZero) {
  RunningStat s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(StatsTest, SingleSampleHasZeroStdDev) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(StatsTest, BatchHelpersMatchRunning) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(StdDev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(Median(xs), 25.0);
}

TEST(StatsTest, PercentileRejectsEmpty) {
  EXPECT_THROW((void)Percentile({}, 50.0), InternalError);
}

// ---------------------------------------------------------------- json

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null").IsNull());
  EXPECT_EQ(JsonValue::Parse("true").AsBool(), true);
  EXPECT_EQ(JsonValue::Parse("false").AsBool(), false);
  EXPECT_EQ(JsonValue::Parse("42").AsInt(), 42);
  EXPECT_EQ(JsonValue::Parse("-17").AsInt(), -17);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("2.5").AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3").AsDouble(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonTest, IntegersRoundTripExactly) {
  const std::int64_t big = 123456789012345678LL;
  const JsonValue v = JsonValue::Parse(std::to_string(big));
  EXPECT_TRUE(v.IsInt());
  EXPECT_EQ(v.AsInt(), big);
  EXPECT_EQ(JsonValue::Parse(v.Dump(-1)).AsInt(), big);
}

TEST(JsonTest, ParsesNestedStructure) {
  const JsonValue v = JsonValue::Parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  EXPECT_EQ(v.At("a").AsArray().size(), 3u);
  EXPECT_TRUE(v.At("a").AsArray()[2].At("b").AsBool());
  EXPECT_TRUE(v.At("c").At("d").IsNull());
}

TEST(JsonTest, StringEscapes) {
  const JsonValue v = JsonValue::Parse(R"("a\"b\\c\nd\tA")");
  EXPECT_EQ(v.AsString(), "a\"b\\c\nd\tA");
}

TEST(JsonTest, UnicodeSurrogatePair) {
  const JsonValue v = JsonValue::Parse(R"("😀")");
  EXPECT_EQ(v.AsString(), "\xF0\x9F\x98\x80");  // U+1F600
}

TEST(JsonTest, DumpParseRoundTrip) {
  JsonObject obj;
  obj.emplace("name", "x\"y");
  obj.emplace("n", 7);
  obj.emplace("pi", 3.25);
  obj.emplace("list", JsonArray{JsonValue(1), JsonValue(false)});
  const JsonValue v(std::move(obj));
  for (const int indent : {-1, 0, 2}) {
    const JsonValue round = JsonValue::Parse(v.Dump(indent));
    EXPECT_EQ(round, v) << "indent=" << indent;
  }
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "01x", "[1] x",
        "\"\\u12\"", "{\"a\":}", "nul"}) {
    EXPECT_THROW((void)JsonValue::Parse(bad), JsonError) << bad;
  }
}

TEST(JsonTest, TypeMismatchThrows) {
  const JsonValue v = JsonValue::Parse("[1]");
  EXPECT_THROW((void)v.AsObject(), JsonError);
  EXPECT_THROW((void)v.AsString(), JsonError);
  EXPECT_THROW((void)v.At("x"), JsonError);
}

TEST(JsonTest, GetWithFallback) {
  const JsonValue v = JsonValue::Parse(R"({"a": 5})");
  EXPECT_EQ(v.GetInt("a", -1), 5);
  EXPECT_EQ(v.GetInt("b", -1), -1);
  EXPECT_EQ(v.GetString("b", "dflt"), "dflt");
  EXPECT_TRUE(v.Contains("a"));
  EXPECT_FALSE(v.Contains("b"));
}

// Untrusted-input hardening: the parser must reject hostile documents with
// a JsonError instead of recursing to a stack overflow or buffering
// without bound (the reschedd request path).

TEST(JsonTest, DeepNestingIsRejectedNotCrashed) {
  // ~100k unclosed arrays: a naive recursive-descent parser would blow the
  // stack long before reporting the missing brackets.
  const std::string hostile(100000, '[');
  EXPECT_THROW((void)JsonValue::Parse(hostile), JsonError);

  // The same applies to balanced-but-deep documents and object nesting.
  std::string deep;
  for (int i = 0; i < 5000; ++i) deep += "{\"a\":[";
  deep += "1";
  for (int i = 0; i < 5000; ++i) deep += "]}";
  EXPECT_THROW((void)JsonValue::Parse(deep), JsonError);
}

TEST(JsonTest, NestingAtTheLimitStillParses) {
  JsonParseLimits limits;
  limits.max_depth = 8;
  const std::string at_limit = "[[[[[[[[1]]]]]]]]";    // depth 8
  const std::string over_limit = "[[[[[[[[[1]]]]]]]]]";  // depth 9
  EXPECT_NO_THROW((void)JsonValue::Parse(at_limit, limits));
  EXPECT_THROW((void)JsonValue::Parse(over_limit, limits), JsonError);
}

TEST(JsonTest, OversizedDocumentIsRejectedUpFront) {
  JsonParseLimits limits;
  limits.max_bytes = 64;
  const std::string small = R"({"ok": true})";
  EXPECT_NO_THROW((void)JsonValue::Parse(small, limits));
  const std::string big = "\"" + std::string(200, 'x') + "\"";
  EXPECT_THROW((void)JsonValue::Parse(big, limits), JsonError);
}

TEST(JsonTest, DefaultLimitsAcceptRealisticDocuments) {
  // Depth ~60 is deeper than any resched document but within the default
  // limit of 96.
  std::string doc(60, '[');
  doc += "0";
  doc += std::string(60, ']');
  EXPECT_NO_THROW((void)JsonValue::Parse(doc));
}

// ---------------------------------------------------------------- csv

TEST(CsvTest, EscapesSpecialFields) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(out.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvTest, NumericFormatting) {
  EXPECT_EQ(CsvWriter::Field(static_cast<std::int64_t>(-42)), "-42");
  EXPECT_EQ(CsvWriter::Field(1.5), "1.5");
}

// ---------------------------------------------------------------- strings

TEST(StringTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  x y \n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%05.1f", 2.25), "002.2");
}

TEST(StringTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcde", 3), "abcde");
}

TEST(StringTest, FormatTicks) {
  EXPECT_EQ(FormatTicks(500), "500 us");
  EXPECT_EQ(FormatTicks(12340), "12.34 ms");
  EXPECT_EQ(FormatTicks(2500000), "2.500 s");
}

// ---------------------------------------------------------------- pool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, UsableAfterException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

// Shutdown/enqueue ordering contract: tasks already queued when the
// destructor runs are drained, not dropped — the destructor only stops the
// workers once the queue is empty. Guards the ordering TSan watches between
// Submit's enqueue and the shutdown flag.
TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No Wait(): destruction races the queue drain on purpose.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentSubmittersAreSerialized) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  {
    std::vector<std::thread> submitters;
    for (int s = 0; s < 4; ++s) {
      submitters.emplace_back([&pool, &count] {
        for (int i = 0; i < 25; ++i) {
          pool.Submit([&count] { count.fetch_add(1); });
        }
      });
    }
    for (auto& t : submitters) t.join();
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

// ---------------------------------------------------------------- timer

TEST(TimerTest, DeadlineSemantics) {
  const Deadline no_deadline(0.0);
  EXPECT_FALSE(no_deadline.Expired());
  EXPECT_GT(no_deadline.RemainingSeconds(), 1e9);

  const Deadline tight(1e-9);
  // A nanosecond deadline expires essentially immediately.
  WallTimer w;
  while (w.ElapsedSeconds() < 1e-4) {
  }
  EXPECT_TRUE(tight.Expired());
}

TEST(TimerTest, ElapsedIsMonotone) {
  WallTimer t;
  const double a = t.ElapsedSeconds();
  const double b = t.ElapsedSeconds();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace resched
