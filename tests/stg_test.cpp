// Tests for the STG (Standard Task Graph Set) importer.
#include <gtest/gtest.h>

#include "core/pa_scheduler.hpp"
#include "io/stg_io.hpp"
#include "sched/validator.hpp"
#include "test_helpers.hpp"

namespace resched {
namespace {

// A 4-task fork-join with STG's dummy source (0) and sink (5):
//   1 <- 0; 2,3 <- 1; 4 <- 2,3; 5 <- 4.
const char* kForkJoin = R"(
4
0 0 0
1 10 1 0
2 20 1 1
3 30 1 1
4 5  2 2 3
5 0  1 4
# trailer comment
)";

TEST(StgTest, ParsesForkJoinStrippingDummies) {
  const ResourceModel model = MakeClbBramDspModel();
  const TaskGraph g = LoadStgText(kForkJoin, model);
  ASSERT_EQ(g.NumTasks(), 4u);  // dummies stripped
  // stg1 -> {stg2, stg3} -> stg4.
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(1, 3));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_EQ(g.NumEdges(), 4u);
  // Software times scaled by 100 (default).
  EXPECT_EQ(g.GetImpl(0, 0).exec_time, 1000);
  EXPECT_EQ(g.GetImpl(2, 0).exec_time, 3000);
}

TEST(StgTest, KeepsDummiesWhenAsked) {
  const ResourceModel model = MakeClbBramDspModel();
  StgOptions opt;
  opt.strip_dummies = false;
  const TaskGraph g = LoadStgText(kForkJoin, model, opt);
  ASSERT_EQ(g.NumTasks(), 6u);
  // Dummy exec 0 clamps to 1 tick.
  EXPECT_EQ(g.GetImpl(0, 0).exec_time, 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(4, 5));
}

TEST(StgTest, SynthesizesHardwarePareto) {
  const ResourceModel model = MakeClbBramDspModel();
  StgOptions opt;
  opt.num_hw_impls = 3;
  opt.speedup = 4.0;
  const TaskGraph g = LoadStgText(kForkJoin, model, opt);
  const Task& t = g.GetTask(0);  // stg1: sw 1000
  ASSERT_EQ(t.impls.size(), 4u);
  EXPECT_EQ(t.impls[1].exec_time, 250);  // 1000 / 4
  // Pareto: slower but smaller down the list.
  for (std::size_t i = 2; i < t.impls.size(); ++i) {
    EXPECT_GT(t.impls[i].exec_time, t.impls[i - 1].exec_time);
    EXPECT_LE(t.impls[i].res[0], t.impls[i - 1].res[0]);
  }
}

TEST(StgTest, CLBOnlyWhenHwSeedZero) {
  const ResourceModel model = MakeClbBramDspModel();
  StgOptions opt;
  opt.hw_seed = 0;
  const TaskGraph g = LoadStgText(kForkJoin, model, opt);
  for (std::size_t t = 0; t < g.NumTasks(); ++t) {
    for (const std::size_t i : g.HardwareImpls(static_cast<TaskId>(t))) {
      EXPECT_EQ(g.GetImpl(static_cast<TaskId>(t), i).res[1], 0);
      EXPECT_EQ(g.GetImpl(static_cast<TaskId>(t), i).res[2], 0);
    }
  }
}

TEST(StgTest, ImportIsDeterministic) {
  const ResourceModel model = MakeClbBramDspModel();
  const TaskGraph a = LoadStgText(kForkJoin, model);
  const TaskGraph b = LoadStgText(kForkJoin, model);
  for (std::size_t t = 0; t < a.NumTasks(); ++t) {
    for (std::size_t i = 0; i < a.GetTask(static_cast<TaskId>(t)).impls.size();
         ++i) {
      EXPECT_EQ(a.GetImpl(static_cast<TaskId>(t), i).exec_time,
                b.GetImpl(static_cast<TaskId>(t), i).exec_time);
      EXPECT_TRUE(a.GetImpl(static_cast<TaskId>(t), i).res ==
                  b.GetImpl(static_cast<TaskId>(t), i).res);
    }
  }
}

TEST(StgTest, ImportedGraphSchedulesValidly) {
  const Platform platform = testing::MakeSmallPlatform();
  TaskGraph g = LoadStgText(kForkJoin, platform.Device().Model());
  Instance inst{"stg", platform, std::move(g)};
  inst.graph.Validate(platform.Device());
  const Schedule s = SchedulePa(inst);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
}

TEST(StgTest, RejectsMalformedInput) {
  const ResourceModel model = MakeClbBramDspModel();
  EXPECT_THROW((void)LoadStgText("", model), InstanceError);
  EXPECT_THROW((void)LoadStgText("2\n0 0 0\n", model), InstanceError);
  // Non-dense ids.
  EXPECT_THROW((void)LoadStgText("1\n0 0 0\n2 5 0\n9 0 0\n", model),
               InstanceError);
  // Forward-referencing predecessor.
  EXPECT_THROW(
      (void)LoadStgText("1\n0 0 1 2\n1 5 0\n2 0 0\n", model),
      InstanceError);
  // Negative time.
  EXPECT_THROW(
      (void)LoadStgText("1\n0 0 0\n1 -5 0\n2 0 1 1\n", model),
      InstanceError);
}

TEST(StgTest, LargerSyntheticStgRoundTrip) {
  // Build STG text for a 20-task chain programmatically, import, schedule.
  std::string text = "20\n0 0 0\n";
  for (int i = 1; i <= 20; ++i) {
    text += StrFormat("%d %d 1 %d\n", i, 7 + i, i - 1);
  }
  text += "21 0 1 20\n";
  const Platform platform = MakeZedBoard();
  TaskGraph g = LoadStgText(text, platform.Device().Model());
  EXPECT_EQ(g.NumTasks(), 20u);
  EXPECT_EQ(g.NumEdges(), 19u);
  Instance inst{"chain20", platform, std::move(g)};
  const Schedule s = SchedulePa(inst);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
}

}  // namespace
}  // namespace resched
