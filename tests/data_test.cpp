// Tests over the instances committed under data/instances/: the on-disk
// format stays loadable and every scheduler handles the shipped files.
#include <gtest/gtest.h>

#include "baseline/isk_scheduler.hpp"
#include "core/pa_scheduler.hpp"
#include "io/instance_io.hpp"
#include "sched/validator.hpp"
#include "test_helpers.hpp"

#ifndef RESCHED_TEST_DATA_DIR
#error "RESCHED_TEST_DATA_DIR must be defined by the build"
#endif

namespace resched {
namespace {

std::string DataPath(const std::string& name) {
  return std::string(RESCHED_TEST_DATA_DIR) + "/instances/" + name;
}

TEST(DataTest, ShippedInstancesLoad) {
  for (const char* name :
       {"small_12.json", "medium_40.json", "large_100.json"}) {
    const Instance inst = LoadInstance(DataPath(name));
    EXPECT_NO_THROW(inst.graph.Validate(inst.platform.Device())) << name;
    EXPECT_GT(inst.graph.NumTasks(), 0u);
  }
}

TEST(DataTest, ShippedInstancesHaveExpectedShape) {
  const Instance small = LoadInstance(DataPath("small_12.json"));
  EXPECT_EQ(small.graph.NumTasks(), 12u);
  EXPECT_EQ(small.platform.NumProcessors(), 2u);
  const Instance large = LoadInstance(DataPath("large_100.json"));
  EXPECT_EQ(large.graph.NumTasks(), 100u);
}

TEST(DataTest, PaSchedulesShippedInstances) {
  for (const char* name : {"small_12.json", "medium_40.json"}) {
    const Instance inst = LoadInstance(DataPath(name));
    const Schedule s = SchedulePa(inst);
    const ValidationResult r = ValidateSchedule(inst, s);
    EXPECT_TRUE(r.ok()) << name << ": " << r.Summary();
  }
}

TEST(DataTest, IskSchedulesShippedSmallInstance) {
  const Instance inst = LoadInstance(DataPath("small_12.json"));
  IskOptions opt;
  opt.k = 3;
  opt.node_budget = 20000;
  const Schedule s = ScheduleIsk(inst, opt);
  EXPECT_TRUE(ValidateSchedule(inst, s).ok());
}

TEST(DataTest, RoundTripIsStable) {
  const Instance inst = LoadInstance(DataPath("medium_40.json"));
  const std::string once = InstanceToString(inst);
  const std::string twice = InstanceToString(InstanceFromString(once));
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace resched
