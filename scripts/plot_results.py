#!/usr/bin/env python3
"""Plot the CSVs produced by the benchmark harness.

Usage:
    python3 scripts/plot_results.py [bench_results_dir] [out_dir]

Reads the per-table/per-figure CSVs written by the binaries in
`build/bench/` and emits PNG plots mirroring the paper's figures.
Requires matplotlib; degrades to a clear error message without it.
"""
import csv
import pathlib
import sys


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    return rows


def main():
    results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench_results")
    out = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "bench_results/plots")
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    out.mkdir(parents=True, exist_ok=True)

    def save(fig, name):
        path = out / f"{name}.png"
        fig.savefig(path, dpi=150, bbox_inches="tight")
        print(f"wrote {path}")

    # ---- Figure 2: makespan curves.
    path = results / "fig2_makespan.csv"
    if path.exists():
        rows = read_csv(path)
        n = [int(r["num_tasks"]) for r in rows]
        fig, ax = plt.subplots(figsize=(6, 4))
        for key, label in [("pa_ms", "PA"), ("par_ms", "PA-R"),
                           ("is1_ms", "IS-1"), ("is5_ms", "IS-5")]:
            ax.plot(n, [float(r[key]) for r in rows], marker="o", label=label)
        ax.set_xlabel("# tasks")
        ax.set_ylabel("avg schedule makespan [ms]")
        ax.set_title("Figure 2 — comparison between solutions")
        ax.legend()
        ax.grid(alpha=0.3)
        save(fig, "fig2_makespan")

    # ---- Figures 3-5: improvement bars with stddev.
    for name, title in [
        ("fig3_pa_vs_is1", "Figure 3 — PA improvement over IS-1"),
        ("fig4_pa_vs_is5", "Figure 4 — PA improvement over IS-5"),
        ("fig5_par_vs_is5", "Figure 5 — PA-R improvement over IS-5"),
    ]:
        path = results / f"{name}.csv"
        if not path.exists():
            continue
        rows = read_csv(path)
        n = [int(r["num_tasks"]) for r in rows]
        mean = [float(r["improvement_pct"]) for r in rows]
        std = [float(r["stddev_pct"]) for r in rows]
        fig, ax = plt.subplots(figsize=(6, 4))
        ax.bar([str(v) for v in n], mean, yerr=std, capsize=3)
        ax.axhline(0, color="black", linewidth=0.8)
        ax.set_xlabel("# tasks")
        ax.set_ylabel("avg improvement [%]")
        ax.set_title(title)
        ax.grid(alpha=0.3, axis="y")
        save(fig, name)

    # ---- Figure 6: convergence traces.
    path = results / "fig6_convergence.csv"
    if path.exists():
        rows = read_csv(path)
        fig, ax = plt.subplots(figsize=(6, 4))
        by_n = {}
        for r in rows:
            by_n.setdefault(int(r["num_tasks"]), []).append(
                (float(r["seconds"]), int(r["best_makespan_us"]) / 1e3))
        for n_tasks, points in sorted(by_n.items()):
            points.sort()
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            ax.step(xs, ys, where="post", marker="o",
                    label=f"{n_tasks} tasks")
        ax.set_xlabel("time [s]")
        ax.set_ylabel("best makespan [ms]")
        ax.set_title("Figure 6 — PA-R solution improvement over time")
        ax.legend()
        ax.grid(alpha=0.3)
        save(fig, "fig6_convergence")

    # ---- Table I: runtime scaling.
    path = results / "table1_runtime.csv"
    if path.exists():
        rows = read_csv(path)
        n = [int(r["num_tasks"]) for r in rows]
        fig, ax = plt.subplots(figsize=(6, 4))
        for key, label in [("pa_total_s", "PA total"),
                           ("pa_scheduling_s", "PA scheduling"),
                           ("is1_s", "IS-1"), ("is5_s", "IS-5")]:
            ax.plot(n, [float(r[key]) for r in rows], marker="o", label=label)
        ax.set_yscale("log")
        ax.set_xlabel("# tasks")
        ax.set_ylabel("runtime [s] (log)")
        ax.set_title("Table I — algorithm execution times")
        ax.legend()
        ax.grid(alpha=0.3)
        save(fig, "table1_runtime")


if __name__ == "__main__":
    main()
