#!/usr/bin/env python3
"""Gate: the SIMD dispatch layer must not change scheduler behaviour.

CI runs the micro benchmarks twice — once with the native backend and once
with ``RESCHED_SIMD=scalar`` — into two result directories. This script
pairs the rows of each CSV present in both directories (on the identity
columns: instance / num_tasks / mode / threads / scan) and demands that
every behavioural column (``best_makespan_us``, ``violations``) is
bit-identical. Throughput columns are expected to differ and are ignored.

Usage:
    check_simd_equivalence.py <native_dir> <scalar_dir> [--csv NAME ...]

Exits 0 when all paired rows agree, 1 on any divergence or structural
mismatch (missing file, unpaired row). Stdlib only.
"""

import argparse
import csv
import sys
from pathlib import Path

KEY_COLUMNS = ("instance", "num_tasks", "mode", "threads", "scan")
BEHAVIOUR_COLUMNS = ("best_makespan_us", "violations")


def load(path: Path) -> tuple[list[str], list[dict]]:
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        rows = [dict(zip(header, raw)) for raw in reader]
    return header, rows


def check_csv(native: Path, scalar: Path) -> int:
    native_header, native_rows = load(native)
    scalar_header, scalar_rows = load(scalar)
    keys = [k for k in KEY_COLUMNS if k in native_header and k in scalar_header]
    watched = [
        c for c in BEHAVIOUR_COLUMNS
        if c in native_header and c in scalar_header
    ]
    if not watched:
        print(f"{native.name}: no behavioural columns; skipped")
        return 0

    def row_key(row: dict) -> tuple:
        return tuple(row.get(k) for k in keys)

    scalar_by_key = {row_key(r): r for r in scalar_rows}
    status = 0
    seen = set()
    for row in native_rows:
        key = row_key(row)
        seen.add(key)
        other = scalar_by_key.get(key)
        label = "/".join(str(k) for k in key)
        if other is None:
            print(f"DIVERGENCE {native.name} {label}: no scalar row")
            status = 1
            continue
        for col in watched:
            if row[col] != other[col]:
                print(
                    f"DIVERGENCE {native.name} {label} {col}: "
                    f"native={row[col]} scalar={other[col]}"
                )
                status = 1
    for key in scalar_by_key:
        if key not in seen:
            print(
                f"DIVERGENCE {native.name} "
                f"{'/'.join(str(k) for k in key)}: no native row"
            )
            status = 1
    if status == 0:
        print(
            f"{native.name}: {len(native_rows)} rows bit-identical on "
            f"{', '.join(watched)}"
        )
    return status


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Fail when native- and scalar-backend bench runs "
        "disagree on scheduler behaviour."
    )
    parser.add_argument("native_dir", type=Path)
    parser.add_argument("scalar_dir", type=Path)
    parser.add_argument(
        "--csv",
        action="append",
        default=None,
        help="CSV basename(s) to compare (default: every CSV present in "
        "both directories)",
    )
    args = parser.parse_args()

    if args.csv:
        names = [n if n.endswith(".csv") else f"{n}.csv" for n in args.csv]
    else:
        names = sorted(
            p.name
            for p in args.native_dir.glob("*.csv")
            if (args.scalar_dir / p.name).is_file()
        )
    if not names:
        print("error: no CSVs to compare", file=sys.stderr)
        return 1

    status = 0
    for name in names:
        native = args.native_dir / name
        scalar = args.scalar_dir / name
        if not native.is_file() or not scalar.is_file():
            print(f"error: missing {name} in one of the runs", file=sys.stderr)
            status = 1
            continue
        status = max(status, check_csv(native, scalar))
    return status


if __name__ == "__main__":
    sys.exit(main())
