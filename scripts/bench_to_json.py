#!/usr/bin/env python3
"""Convert bench CSV dumps into BENCH_<name>.json result files.

Every bench binary writes ``<out_dir>/<name>.csv`` (see
bench/common/bench_common.cpp). This script re-emits each CSV as
``BENCH_<name>.json`` — a machine-readable artifact for CI trend tracking
and for diffing runs without a CSV parser:

    {
      "name": "micro_restart",
      "source_csv": "bench_results/micro_restart.csv",
      "num_rows": 18,
      "columns": ["instance", "mode", ...],
      "rows": [{"instance": "tg_n20_i0", "mode": "legacy", ...}, ...]
    }

Cell values are coerced to int or float when they parse as one, so
downstream tooling can compare numerically.

Usage:
    bench_to_json.py [--out-dir DIR] [csv-or-dir ...]
    bench_to_json.py --diff [--baseline-dir DIR] [csv-or-dir ...]

With no positional arguments, converts every ``*.csv`` under
``bench_results/``. JSON files land next to each CSV unless --out-dir is
given. Stdlib only.

``--diff`` compares each CSV against the committed ``BENCH_<name>.json``
(from --baseline-dir, default ``bench_results/``) instead of writing
anything: rows are matched on the identity columns both sides share
(instance / num_tasks / mode / threads / scan / simd), and every shared
numeric column is reported as ``old -> new (delta, pct)``. Rows present on
only one side are listed. Exit status is 0 when every row pairs up —
deltas are informational — and 1 on unpaired rows or a missing baseline.
"""

import argparse
import csv
import json
import sys
from pathlib import Path

# Columns that identify a row rather than measure it; the row key for
# --diff is the ordered tuple of these that appear in both headers.
KEY_HINTS = ("instance", "num_tasks", "mode", "threads", "scan", "simd",
             "impl", "kind", "name")


def coerce(cell: str):
    """Returns cell as int, then float, then unchanged string."""
    for parse in (int, float):
        try:
            return parse(cell)
        except ValueError:
            continue
    return cell


def convert(csv_path: Path, out_dir: Path | None) -> Path:
    with csv_path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{csv_path}: empty CSV")
        rows = []
        for lineno, raw in enumerate(reader, start=2):
            if len(raw) != len(header):
                raise ValueError(
                    f"{csv_path}:{lineno}: expected {len(header)} cells, "
                    f"got {len(raw)}"
                )
            rows.append({key: coerce(cell) for key, cell in zip(header, raw)})

    payload = {
        "name": csv_path.stem,
        "source_csv": str(csv_path),
        "num_rows": len(rows),
        "columns": header,
        "rows": rows,
    }
    target_dir = out_dir if out_dir is not None else csv_path.parent
    target_dir.mkdir(parents=True, exist_ok=True)
    out_path = target_dir / f"BENCH_{csv_path.stem}.json"
    with out_path.open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return out_path


def load_rows(csv_path: Path) -> tuple[list[str], list[dict]]:
    with csv_path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{csv_path}: empty CSV")
        rows = [
            {key: coerce(cell) for key, cell in zip(header, raw)}
            for raw in reader
        ]
    return header, rows


def diff_one(csv_path: Path, baseline_dir: Path) -> int:
    """Prints numeric deltas vs the committed JSON; returns 0 when every
    row pairs up (deltas themselves are informational, not failures)."""
    baseline_path = baseline_dir / f"BENCH_{csv_path.stem}.json"
    if not baseline_path.is_file():
        print(f"{csv_path.stem}: no baseline at {baseline_path}")
        return 1
    with baseline_path.open() as fh:
        baseline = json.load(fh)
    header, new_rows = load_rows(csv_path)
    old_rows = baseline.get("rows", [])
    old_header = baseline.get("columns", [])

    keys = [k for k in KEY_HINTS if k in header and k in old_header]
    if not keys:
        print(f"{csv_path.stem}: no shared identity columns; cannot pair rows")
        return 1
    numeric = [
        c for c in header
        if c in old_header and c not in keys
    ]

    def row_key(row: dict) -> tuple:
        return tuple(row.get(k) for k in keys)

    old_by_key = {row_key(r): r for r in old_rows}
    new_by_key = {row_key(r): r for r in new_rows}
    status = 0
    print(f"== {csv_path.stem} (keyed on {', '.join(keys)}) ==")
    for key, new in new_by_key.items():
        old = old_by_key.get(key)
        label = "/".join(str(k) for k in key)
        if old is None:
            print(f"  {label}: only in new run")
            status = 1
            continue
        for col in numeric:
            a, b = old.get(col), new.get(col)
            if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                continue
            if a == b:
                continue
            delta = b - a
            pct = f", {100.0 * delta / a:+.1f}%" if a else ""
            print(f"  {label} {col}: {a} -> {b} ({delta:+g}{pct})")
    for key in old_by_key:
        if key not in new_by_key:
            print(f"  {'/'.join(str(k) for k in key)}: only in baseline")
            status = 1
    return status


def gather(arguments: list[str]) -> list[Path]:
    if not arguments:
        arguments = ["bench_results"]
    csvs: list[Path] = []
    for arg in arguments:
        path = Path(arg)
        if path.is_dir():
            found = sorted(path.glob("*.csv"))
            if not found:
                print(f"warning: no CSV files under {path}", file=sys.stderr)
            csvs.extend(found)
        elif path.is_file():
            csvs.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return csvs


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Emit BENCH_<name>.json files from bench CSV dumps."
    )
    parser.add_argument(
        "inputs",
        nargs="*",
        help="CSV files or directories of CSVs (default: bench_results/)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="directory for the JSON files (default: next to each CSV)",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="compare CSVs against committed BENCH_<name>.json instead of "
        "converting",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("bench_results"),
        help="where the baseline BENCH_<name>.json files live (--diff only)",
    )
    args = parser.parse_args()

    try:
        csvs = gather(args.inputs)
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if not csvs:
        print("error: nothing to convert", file=sys.stderr)
        return 2

    status = 0
    for csv_path in csvs:
        try:
            if args.diff:
                status = max(status, diff_one(csv_path, args.baseline_dir))
            else:
                print(convert(csv_path, args.out_dir))
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
