#!/usr/bin/env python3
"""Convert bench CSV dumps into BENCH_<name>.json result files.

Every bench binary writes ``<out_dir>/<name>.csv`` (see
bench/common/bench_common.cpp). This script re-emits each CSV as
``BENCH_<name>.json`` — a machine-readable artifact for CI trend tracking
and for diffing runs without a CSV parser:

    {
      "name": "micro_restart",
      "source_csv": "bench_results/micro_restart.csv",
      "num_rows": 18,
      "columns": ["instance", "mode", ...],
      "rows": [{"instance": "tg_n20_i0", "mode": "legacy", ...}, ...]
    }

Cell values are coerced to int or float when they parse as one, so
downstream tooling can compare numerically.

Usage:
    bench_to_json.py [--out-dir DIR] [csv-or-dir ...]

With no positional arguments, converts every ``*.csv`` under
``bench_results/``. JSON files land next to each CSV unless --out-dir is
given. Stdlib only.
"""

import argparse
import csv
import json
import sys
from pathlib import Path


def coerce(cell: str):
    """Returns cell as int, then float, then unchanged string."""
    for parse in (int, float):
        try:
            return parse(cell)
        except ValueError:
            continue
    return cell


def convert(csv_path: Path, out_dir: Path | None) -> Path:
    with csv_path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{csv_path}: empty CSV")
        rows = []
        for lineno, raw in enumerate(reader, start=2):
            if len(raw) != len(header):
                raise ValueError(
                    f"{csv_path}:{lineno}: expected {len(header)} cells, "
                    f"got {len(raw)}"
                )
            rows.append({key: coerce(cell) for key, cell in zip(header, raw)})

    payload = {
        "name": csv_path.stem,
        "source_csv": str(csv_path),
        "num_rows": len(rows),
        "columns": header,
        "rows": rows,
    }
    target_dir = out_dir if out_dir is not None else csv_path.parent
    target_dir.mkdir(parents=True, exist_ok=True)
    out_path = target_dir / f"BENCH_{csv_path.stem}.json"
    with out_path.open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return out_path


def gather(arguments: list[str]) -> list[Path]:
    if not arguments:
        arguments = ["bench_results"]
    csvs: list[Path] = []
    for arg in arguments:
        path = Path(arg)
        if path.is_dir():
            found = sorted(path.glob("*.csv"))
            if not found:
                print(f"warning: no CSV files under {path}", file=sys.stderr)
            csvs.extend(found)
        elif path.is_file():
            csvs.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return csvs


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Emit BENCH_<name>.json files from bench CSV dumps."
    )
    parser.add_argument(
        "inputs",
        nargs="*",
        help="CSV files or directories of CSVs (default: bench_results/)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=None,
        help="directory for the JSON files (default: next to each CSV)",
    )
    args = parser.parse_args()

    try:
        csvs = gather(args.inputs)
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if not csvs:
        print("error: nothing to convert", file=sys.stderr)
        return 2

    status = 0
    for csv_path in csvs:
        try:
            out_path = convert(csv_path, args.out_dir)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            status = 1
            continue
        print(out_path)
    return status


if __name__ == "__main__":
    sys.exit(main())
